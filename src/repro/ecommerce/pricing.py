"""Pricing policies: the behaviours the paper observes, as code.

A retailer owns one :class:`PricingPolicy`; given a :class:`Product` and a
:class:`PricingContext` (who is asking, from where, when, with what cookies)
it returns the price **in USD** that the retailer intends to charge.  The
retailer server then converts to the visitor's display currency.

The policy zoo maps one-to-one onto the paper's findings:

===========================  =====================================================
Paper observation            Policy
===========================  =====================================================
"price variations between    :class:`GeoMultiplicative` -- parallel horizontal
locations is multiplicative" lines in Fig. 6(a)
(digitalrev)

"prices vary by an additive  :class:`GeoAdditive` -- the converging lines of
term" (energie, one           Fig. 6(b); also the ×3 ratios on cheap products
location)                     in Fig. 5

"mix of multiplicative and   :class:`CategoryDispatch` / summing both kinds
additive pricing"

expensive products capped    :class:`DampedGeoMultiplicative` -- spread decays
below ×1.5 (Fig. 5)           above a price knee

per-US-city differences,     :class:`CityMultiplicative` with per-product noise
incl. mixed pairs (Fig. 8a)   for "mixed" cities

Kindle prices differing per  :class:`IdentityKeyed` -- price points chosen by a
user with *no* login          hash of (product, identity), where identity is the
correlation (Fig. 10)         login id **or** the anonymous session

A/B testing as noise (§2.2)  :class:`ABTestNoise` wrapper

availability/demand drift    :class:`TemporalDrift` wrapper
over time (§2.2)
===========================  =====================================================

All draws are keyed by :func:`repro.util.stable_hash`, so the same world
seed reproduces the same prices in any process.

Signal declarations (the burst-memo contract): every policy declares, via
:meth:`signals`, exactly which :class:`PricingContext` fields its price
depends on.  The declaration powers the fan-out burst memo
(:mod:`repro.core.burstcache`): a retailer whose policy only reads
*capturable* signals -- the per-vantage-stable fields in
:data:`CAPTURABLE_SIGNALS` -- serves responses that are a pure function of
a small signature, so a whole synchronized burst can be memoized.
Declarations are verified, not trusted: the live path records actual
reads through a :class:`SignalProbe`, and a policy caught reading an
undeclared signal demotes its retailer to the live path.  Policies
without a ``signals`` method are introspected the same way
(:func:`signals_read` returns ``None`` and the memo layer records reads
against the capturable ceiling before caching anything).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Optional, Protocol, Sequence

from repro.ecommerce.catalog import Product
from repro.util import stable_hash, stable_uniform

__all__ = [
    "PricingContext",
    "PricingPolicy",
    "UniformPricing",
    "GeoMultiplicative",
    "DampedGeoMultiplicative",
    "GeoAdditive",
    "GeoMultiplyAdd",
    "CityMultiplicative",
    "CategoryDispatch",
    "IdentityKeyed",
    "ReferrerDiscount",
    "ABTestNoise",
    "TemporalDrift",
    "coverage_includes",
    "CAPTURABLE_SIGNALS",
    "SignalProbe",
    "signals_read",
]


@dataclass(frozen=True)
class PricingContext:
    """Everything a server-side pricing engine can key on for one request.

    ``identity`` is the logged-in account id when present, otherwise an
    anonymous session identifier (cookie-derived); ``nonce`` is unique per
    request and only used by A/B noise.
    """

    country_code: str
    city: str = ""
    day_index: int = 0
    seconds: float = 0.0
    identity: Optional[str] = None
    logged_in: bool = False
    referer: Optional[str] = None
    browser: str = ""
    nonce: int = 0

    def with_identity(self, identity: str, *, logged_in: bool) -> "PricingContext":
        """A copy of this context as seen for a (logged-in) identity."""
        return replace(self, identity=identity, logged_in=logged_in)


class PricingPolicy(Protocol):
    """The server-side pricing interface.

    Policies may additionally implement ``signals() -> frozenset[str]``
    declaring which :class:`PricingContext` fields :meth:`price` reads
    (see the module docstring); every built-in policy does.  Policies
    without the method still work -- the burst memo introspects their
    reads at runtime instead.
    """

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price of ``product`` for the requester in ``ctx``."""
        ...  # pragma: no cover


#: All signal names a policy can declare: the :class:`PricingContext`
#: field set.
PRICING_SIGNALS: frozenset[str] = frozenset(
    f.name for f in fields(PricingContext)
)

#: Signals that are a pure function of (vantage point, virtual day) and can
#: therefore be captured in a fan-out burst signature: the requester's
#: geo-located country and city, the request day, and the browser profile.
#: Everything else (identity, login state, nonce, referer, sub-day time)
#: depends on per-request or mutable session state the signature cannot
#: see, so a policy reading it keeps its retailer on the live path.
CAPTURABLE_SIGNALS: frozenset[str] = frozenset(
    {"country_code", "city", "day_index", "browser"}
)


class SignalProbe:
    """A :class:`PricingContext` stand-in that records attribute reads.

    Duck-typed: it forwards every attribute to the wrapped context while
    adding each :class:`PricingContext` *field* read to ``reads``.  The
    live fan-out path prices through a probe so the burst memo can verify
    a policy's declared signals against what it actually read -- detected,
    not assumed.
    """

    __slots__ = ("_ctx", "_reads")

    def __init__(self, ctx: PricingContext, reads: set[str]) -> None:
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_reads", reads)

    def __getattr__(self, name: str):
        if name in PRICING_SIGNALS:
            object.__getattribute__(self, "_reads").add(name)
        return getattr(object.__getattribute__(self, "_ctx"), name)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("SignalProbe is read-only")


def signals_read(policy: PricingPolicy) -> Optional[frozenset[str]]:
    """The signals ``policy`` declares to read, or ``None`` if undeclared.

    ``None`` means the policy carries no ``signals()`` declaration; the
    burst memo then falls back to runtime introspection (recording actual
    reads through a :class:`SignalProbe` before caching anything).
    """
    declare = getattr(policy, "signals", None)
    if declare is None:
        return None
    raw = declare()
    if raw is None:
        # A composite policy (dispatch/wrapper) whose inner policy is
        # itself undeclared propagates the unknown-ness.
        return None
    declared = frozenset(raw)
    unknown = declared - PRICING_SIGNALS
    if unknown:
        raise ValueError(
            f"{type(policy).__name__}.signals() declared unknown signals "
            f"{sorted(unknown)}; valid names are PricingContext fields"
        )
    return declared


def coverage_includes(product: Product, coverage: float, seed: int) -> bool:
    """Deterministically decide if ``product`` is subject to a policy.

    The paper's Fig. 3 measures, per retailer, the *fraction of requests*
    that exhibit variation; retailers where only some products are
    dynamically priced land below 100%.  Coverage is a per-product coin
    flip keyed on (seed, sku) so it is stable across days and locations.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    if coverage >= 1.0:
        return True
    if coverage <= 0.0:
        return False
    return stable_hash(seed, product.sku, "coverage") / 2**64 < coverage


@dataclass(frozen=True)
class UniformPricing:
    """The honest baseline: same price for everyone, everywhere."""

    margin: float = 1.0

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (none: honest pricing)."""
        return frozenset()

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        return product.base_price_usd * self.margin


@dataclass(frozen=True)
class GeoMultiplicative:
    """Per-country multiplicative pricing (Fig. 6(a) behaviour).

    ``table`` maps ISO country codes to multipliers; countries absent from
    the table pay ``default``.  ``coverage`` < 1 exempts a per-product
    deterministic subset entirely.
    """

    table: Mapping[str, float]
    default: float = 1.0
    coverage: float = 1.0
    seed: int = 0

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (the requester's country)."""
        return frozenset({"country_code"})

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        if not coverage_includes(product, self.coverage, self.seed):
            return product.base_price_usd
        multiplier = self.table.get(ctx.country_code.upper(), self.default)
        return product.base_price_usd * multiplier


@dataclass(frozen=True)
class DampedGeoMultiplicative:
    """Geo multipliers whose spread shrinks for expensive products.

    Fig. 5 shows the priciest products (several $K) never vary by more than
    ×1.5 while mid-range items reach ×2.  Real-world explanation: a 40%
    margin on a $4,000 handbag is competitively untenable.  The damping
    interpolates each multiplier toward 1.0 as the base price crosses
    ``knee`` → ``ceiling``: at or below the knee the full multiplier
    applies; above the ceiling only ``floor_fraction`` of the (multiplier-1)
    spread remains.
    """

    table: Mapping[str, float]
    default: float = 1.0
    knee: float = 1200.0
    ceiling: float = 3000.0
    floor_fraction: float = 0.5
    coverage: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.knee < self.ceiling:
            raise ValueError("need 0 < knee < ceiling")
        if not 0.0 <= self.floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in [0, 1]")

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (the requester's country)."""
        return frozenset({"country_code"})

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        if not coverage_includes(product, self.coverage, self.seed):
            return product.base_price_usd
        multiplier = self.table.get(ctx.country_code.upper(), self.default)
        base = product.base_price_usd
        if base <= self.knee:
            damp = 1.0
        elif base >= self.ceiling:
            damp = self.floor_fraction
        else:
            span = (base - self.knee) / (self.ceiling - self.knee)
            damp = 1.0 - span * (1.0 - self.floor_fraction)
        effective = 1.0 + (multiplier - 1.0) * damp
        return base * effective


@dataclass(frozen=True)
class GeoAdditive:
    """Per-country additive surcharges in USD (Fig. 6(b) behaviour).

    An $18 surcharge triples a $9 supplement but vanishes into a $500
    item -- exactly the converging-lines shape of Fig. 6(b) and the high
    ratios at the cheap end of Fig. 5.

    ``per_product_scale`` multiplies the surcharge by a deterministic
    per-product factor drawn uniformly from the given range -- modeling
    shipping-included pricing where the surcharge tracks item weight, not
    price.  A heavy-but-cheap item then shows the ×3 extremes of Fig. 5
    while the retailer's *median* ratio stays modest (Fig. 4).
    """

    table: Mapping[str, float]
    default: float = 0.0
    coverage: float = 1.0
    seed: int = 0
    per_product_scale: Optional[tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.per_product_scale is not None:
            low, high = self.per_product_scale
            if not 0 <= low <= high:
                raise ValueError("per_product_scale must satisfy 0 <= low <= high")

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (the requester's country)."""
        return frozenset({"country_code"})

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        if not coverage_includes(product, self.coverage, self.seed):
            return product.base_price_usd
        surcharge = self.table.get(ctx.country_code.upper(), self.default)
        if self.per_product_scale is not None and surcharge:
            low, high = self.per_product_scale
            surcharge *= stable_uniform(low, high, self.seed, product.sku, "weight")
        return product.base_price_usd + surcharge


@dataclass(frozen=True)
class GeoMultiplyAdd:
    """Combined multiplicative and additive geo pricing.

    ``price = base * mult_table[country] + add_table[country]`` -- the
    "mix of multiplicative and additive pricing across our vantage points"
    the paper reports for several retailers (and the exact generator behind
    Fig. 6(b): most countries multiplicative, one paying a flat surcharge).
    """

    mult_table: Mapping[str, float] = field(default_factory=dict)
    add_table: Mapping[str, float] = field(default_factory=dict)
    mult_default: float = 1.0
    add_default: float = 0.0
    coverage: float = 1.0
    seed: int = 0

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (the requester's country)."""
        return frozenset({"country_code"})

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        if not coverage_includes(product, self.coverage, self.seed):
            return product.base_price_usd
        country = ctx.country_code.upper()
        multiplier = self.mult_table.get(country, self.mult_default)
        surcharge = self.add_table.get(country, self.add_default)
        return product.base_price_usd * multiplier + surcharge


@dataclass(frozen=True)
class CityMultiplicative:
    """Per-city multipliers inside one country (Fig. 8(a) behaviour).

    ``noisy_cities`` get an extra per-(product, city) factor in
    ``1 ± noise_amplitude``: against a flat city this produces the "mixed"
    scatter of Fig. 8(a)'s Boston-Lincoln panel, where one location is
    cheaper for some products and dearer for others.
    """

    table: Mapping[str, float]
    default: float = 1.0
    noisy_cities: frozenset[str] = frozenset()
    noise_amplitude: float = 0.0
    coverage: float = 1.0
    seed: int = 0

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (the requester's city)."""
        return frozenset({"city"})

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        if not coverage_includes(product, self.coverage, self.seed):
            return product.base_price_usd
        multiplier = self.table.get(ctx.city, self.default)
        if ctx.city in self.noisy_cities and self.noise_amplitude > 0:
            multiplier *= 1.0 + stable_uniform(
                -self.noise_amplitude,
                self.noise_amplitude,
                self.seed,
                product.sku,
                ctx.city,
                "city-noise",
            )
        return product.base_price_usd * multiplier


@dataclass(frozen=True)
class CategoryDispatch:
    """Route to a different policy per product category.

    Amazon in the paper is flat across US cities, varies across countries,
    and shows identity-keyed Kindle ebook prices -- three behaviours on one
    domain, expressed here as a dispatch table.
    """

    routes: Mapping[str, PricingPolicy]
    default: PricingPolicy

    def signals(self) -> Optional[frozenset[str]]:
        """Union of every route's signals (``None`` if any is undeclared)."""
        combined: set[str] = set()
        for policy in (*self.routes.values(), self.default):
            inner = signals_read(policy)
            if inner is None:
                return None
            combined |= inner
        return frozenset(combined)

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        policy = self.routes.get(product.category, self.default)
        return policy.price(product, ctx)


@dataclass(frozen=True)
class IdentityKeyed:
    """Price points selected by a hash of (product, requester identity).

    Models the Kindle observation of Fig. 10: prices differ between users
    *and* the logged-out state, with no systematic logged-in premium --
    every identity (including "anonymous from vantage X") simply hashes to
    one of ``len(multipliers)`` price points.
    """

    multipliers: Sequence[float] = (0.85, 1.0, 1.12)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.multipliers:
            raise ValueError("need at least one price point")

    def signals(self) -> frozenset[str]:
        """Context signals the price depends on (the requester identity)."""
        return frozenset({"identity"})

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        identity = ctx.identity or "anonymous"
        index = stable_hash(self.seed, product.sku, identity) % len(self.multipliers)
        return product.base_price_usd * self.multipliers[index]


@dataclass(frozen=True)
class ReferrerDiscount:
    """Referrer-dependent pricing (the authors' HotNets'12 finding).

    Visitors arriving from a price-aggregator referrer get a discount --
    "search discrimination".  This is invisible to $heriff's fan-out (the
    backend requests the bare URI without the user's Referer header), so a
    referred user's own price disagrees with every vantage point's; the
    cleaning stage detects exactly that mismatch.
    """

    inner: PricingPolicy
    referer_substring: str = "pricegrabber"
    discount: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not self.referer_substring:
            raise ValueError("referer_substring must be non-empty")

    def signals(self) -> Optional[frozenset[str]]:
        """The inner policy's signals plus the Referer header."""
        inner = signals_read(self.inner)
        if inner is None:
            return None
        return inner | {"referer"}

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        base = self.inner.price(product, ctx)
        if ctx.referer and self.referer_substring in ctx.referer:
            return base * (1.0 - self.discount)
        return base


@dataclass(frozen=True)
class ABTestNoise:
    """Per-request A/B experiment noise around an inner policy.

    A fraction of requests lands in a treatment bucket whose price is
    scaled by ``1 + amplitude``.  Keyed on the request nonce, so repeated
    measurements see different buckets -- which is precisely why the
    paper's methodology repeats measurements to wash this out.
    """

    inner: PricingPolicy
    amplitude: float = 0.05
    fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def signals(self) -> Optional[frozenset[str]]:
        """Inner signals plus the per-request nonce (when noise is live).

        A zero fraction or amplitude makes the wrapper transparent, and
        the declaration says so exactly -- the burst memo can then still
        memoize the retailer.
        """
        inner = signals_read(self.inner)
        if inner is None:
            return None
        if self.fraction <= 0.0 or self.amplitude == 0.0:
            return inner
        return inner | {"nonce"}

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        base = self.inner.price(product, ctx)
        if self.fraction <= 0.0 or self.amplitude == 0.0:
            return base
        draw = stable_hash(self.seed, ctx.nonce, product.sku, "ab") / 2**64
        if draw < self.fraction:
            return base * (1.0 + self.amplitude)
        return base


@dataclass(frozen=True)
class TemporalDrift:
    """Day-to-day repricing around an inner policy.

    Every (product, day) gets a deterministic factor in ``1 ± amplitude``.
    Synchronized same-instant fan-outs are immune (all vantage points see
    the same day); naive cross-day comparisons are not -- the ablation
    benchmark quantifies exactly that.
    """

    inner: PricingPolicy
    amplitude: float = 0.03
    seed: int = 0

    def signals(self) -> Optional[frozenset[str]]:
        """Inner signals plus the request day (when drift is live)."""
        inner = signals_read(self.inner)
        if inner is None:
            return None
        if self.amplitude <= 0:
            return inner
        return inner | {"day_index"}

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        base = self.inner.price(product, ctx)
        if self.amplitude <= 0:
            return base
        factor = 1.0 + stable_uniform(
            -self.amplitude, self.amplitude, self.seed, product.sku, ctx.day_index, "drift"
        )
        return base * factor
