"""Fig. 5: maximal ratio of price difference vs minimal product price."""

from __future__ import annotations

from repro.analysis.products import ratio_vs_min_price
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

_BANDS = (
    ("$0-50", 0.0, 50.0),
    ("$50-200", 50.0, 200.0),
    ("$200-500", 200.0, 500.0),
    ("$500-2000", 500.0, 2000.0),
    ("$2000+", 2000.0, float("inf")),
)


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 5's price-band summary from the crawl."""
    result = FigureResult(
        figure_id="FIG5",
        title="Maximal ratio of price difference per product price (all stores)",
        paper_claim=(
            "differences across the whole $10-$10K range; up to x3 for cheap "
            "products, up to x2 around $1K, always below x1.5 beyond several $K"
        ),
        columns=("price_band", "n_products", "max_ratio", "p95_ratio"),
    )
    points = ratio_vs_min_price(ctx.crawl_clean.kept)
    band_max: dict[str, float] = {}
    for label, low, high in _BANDS:
        in_band = [p.max_ratio for p in points if low <= p.min_price_usd < high]
        if not in_band:
            result.add_row(label, 0, 0.0, 0.0)
            band_max[label] = 0.0
            continue
        ordered = sorted(in_band)
        p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
        result.add_row(label, len(in_band), max(in_band), p95)
        band_max[label] = max(in_band)

    result.check(
        "price range spans $10 to $10K",
        bool(points)
        and points[0].min_price_usd < 20
        and points[-1].min_price_usd > 2000,
    )
    result.check(
        "cheap products show the largest ratios (towards x3)",
        band_max.get("$0-50", 0.0) >= 1.9
        and band_max.get("$0-50", 0.0)
        >= max(band_max.get("$500-2000", 0.0), band_max.get("$2000+", 0.0)),
    )
    result.check(
        "mid-range reaches beyond x1.5",
        band_max.get("$500-2000", 0.0) >= 1.5,
    )
    result.check(
        "multi-$K products stay below x1.5",
        0.0 < band_max.get("$2000+", 0.0) < 1.5,
    )
    result.notes.append(f"{len(points)} products pooled across all retailers")
    return result
