"""The crowdsourced dataset and its summary statistics.

Everything Figs. 1-2 need lives here: per-domain counts of checks showing
variation, per-domain ratio distributions, and the §3.2 headline numbers
(requests, users, countries, domains).

Since the columnar-store refactor the dataset is a thin view over the
shared spine: fleet reports live in a :class:`~repro.store.ReportTable`
(one row per completed check), while the record-level facts -- who asked,
from where, what they themselves saw -- are parallel columns alongside
it.  :class:`CheckRecord` objects materialize lazily and are cached;
the Fig. 1/2 aggregations are single passes over the columns.
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.core.extension import CheckOutcome
from repro.core.reports import PriceCheckReport
from repro.store import ReportTable, StringPool, TableSlice
from repro.store.table import NO_CURRENCY, _check_ids

__all__ = ["CheckRecord", "CrowdDataset"]


@dataclass(frozen=True)
class CheckRecord:
    """One crowd-triggered check: who asked, what came back."""

    user_id: str
    user_country: str
    day_index: int
    domain: str
    url: str
    outcome: CheckOutcome

    @property
    def report(self) -> Optional[PriceCheckReport]:
        return self.outcome.report

    @property
    def ok(self) -> bool:
        return self.outcome.ok


class _RecordsView(Sequence):
    """Lazy ``Sequence[CheckRecord]`` over the dataset's columns."""

    __slots__ = ("_dataset",)

    def __init__(self, dataset: "CrowdDataset") -> None:
        self._dataset = dataset

    def __len__(self) -> int:
        return len(self._dataset)

    def __getitem__(self, index: Union[int, slice]):
        n = len(self._dataset)
        if isinstance(index, slice):
            return [self._dataset.record(i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("record index out of range")
        return self._dataset.record(index)

    def __iter__(self) -> Iterator[CheckRecord]:
        for i in range(len(self._dataset)):
            yield self._dataset.record(i)


class CrowdDataset:
    """The full beta-phase collection (a view over the columnar spine)."""

    def __init__(self, records: Optional[list[CheckRecord]] = None) -> None:
        self._table = ReportTable()
        # Record-level pools (domains/urls/currencies reuse the table's).
        self._users = StringPool()
        self._user_countries = StringPool()
        self._failures = StringPool()
        # Record-level columns.
        self._r_user_id: list[int] = []
        self._r_country_id: list[int] = []
        self._r_day: list[int] = []
        self._r_domain_id: list[int] = []
        self._r_url_id: list[int] = []
        # Outcome columns (the extension's view of the same click).
        self._o_url_id: list[int] = []
        self._o_user_id: list[int] = []
        self._o_amount: list[Optional[float]] = []
        self._o_currency_id: list[int] = []
        self._o_failure_id: list[int] = []
        #: Row in the report table, or -1 when the flow never reached the
        #: backend (page unreachable, nothing highlightable).
        self._report_row: list[int] = []
        # Weak, like ReportTable's row cache: identity-stable while
        # referenced, collectable after a full list-style pass.
        self._record_cache: "weakref.WeakValueDictionary[int, CheckRecord]" = (
            weakref.WeakValueDictionary()
        )
        if records:
            for record in records:
                self.add(record)

    # ------------------------------------------------------------------
    @property
    def table(self) -> ReportTable:
        """The columnar spine holding the completed checks' reports."""
        return self._table

    @property
    def records(self) -> _RecordsView:
        """All crowd check records, as a lazy list-compatible view."""
        return _RecordsView(self)

    def add(self, record: CheckRecord) -> None:
        """Append one crowd check record."""
        table = self._table
        self._r_user_id.append(self._users.intern(record.user_id))
        self._r_country_id.append(self._user_countries.intern(record.user_country))
        self._r_day.append(record.day_index)
        self._r_domain_id.append(table.domains.intern(record.domain))
        self._r_url_id.append(table.urls.intern(record.url))
        outcome = record.outcome
        self._o_url_id.append(table.urls.intern(outcome.url))
        self._o_user_id.append(self._users.intern(outcome.user))
        self._o_amount.append(outcome.user_amount)
        self._o_currency_id.append(
            NO_CURRENCY if outcome.user_currency is None
            else table.currencies.intern(outcome.user_currency)
        )
        self._o_failure_id.append(self._failures.intern(outcome.failure))
        self._report_row.append(
            table.append(outcome.report) if outcome.report is not None else -1
        )

    def append_segment(self, other: "CrowdDataset") -> None:
        """Fold another dataset's rows onto this one, column by column.

        The checkpoint-resume merge path: report columns go through
        :meth:`ReportTable.append_segment` (which returns the pool-id
        remaps), record-level pools are re-interned into this dataset's
        own pools, and the record columns are extended with translated
        ids.  Byte-identical to re-adding every record (test-asserted),
        without materializing a single :class:`CheckRecord`.
        """
        base = len(self._table)
        maps = self._table.append_segment(other._table)
        user_map = [self._users.intern(v) for v in other._users.values]
        country_map = [
            self._user_countries.intern(v)
            for v in other._user_countries.values
        ]
        failure_map = [
            self._failures.intern(v) for v in other._failures.values
        ]
        self._r_user_id.extend(user_map[v] for v in other._r_user_id)
        self._r_country_id.extend(
            country_map[v] for v in other._r_country_id
        )
        self._r_day.extend(other._r_day)
        self._r_domain_id.extend(
            maps["domains"][v] for v in other._r_domain_id
        )
        self._r_url_id.extend(maps["urls"][v] for v in other._r_url_id)
        self._o_url_id.extend(maps["urls"][v] for v in other._o_url_id)
        self._o_user_id.extend(user_map[v] for v in other._o_user_id)
        self._o_amount.extend(other._o_amount)
        self._o_currency_id.extend(
            NO_CURRENCY if v == NO_CURRENCY else maps["currencies"][v]
            for v in other._o_currency_id
        )
        self._o_failure_id.extend(
            failure_map[v] for v in other._o_failure_id
        )
        self._report_row.extend(
            -1 if row < 0 else base + row for row in other._report_row
        )

    def record(self, i: int) -> CheckRecord:
        """Record ``i`` as a :class:`CheckRecord` (lazily built, cached
        weakly -- same object while any reference to it is alive)."""
        if not 0 <= i < len(self):
            raise IndexError(f"record index {i} out of range")
        cached = self._record_cache.get(i)
        if cached is None:
            table = self._table
            row = self._report_row[i]
            currency_id = self._o_currency_id[i]
            outcome = CheckOutcome(
                url=table.urls.value(self._o_url_id[i]),
                user=self._users.value(self._o_user_id[i]),
                report=table.report(row) if row >= 0 else None,
                user_amount=self._o_amount[i],
                user_currency=(
                    None if currency_id == NO_CURRENCY
                    else table.currencies.value(currency_id)
                ),
                failure=self._failures.value(self._o_failure_id[i]),
            )
            cached = CheckRecord(
                user_id=self._users.value(self._r_user_id[i]),
                user_country=self._user_countries.value(self._r_country_id[i]),
                day_index=self._r_day[i],
                domain=table.domains.value(self._r_domain_id[i]),
                url=table.urls.value(self._r_url_id[i]),
                outcome=outcome,
            )
            self._record_cache[i] = cached
        return cached

    def __len__(self) -> int:
        return len(self._r_user_id)

    def __iter__(self) -> Iterator[CheckRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # §3.2 headline numbers
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self)

    @property
    def n_users(self) -> int:
        return len(set(self._r_user_id))

    @property
    def n_countries(self) -> int:
        return len(set(self._r_country_id))

    @property
    def n_domains(self) -> int:
        return len(set(self._r_domain_id))

    def summary(self) -> dict[str, int]:
        """The §3.2 headline numbers of this dataset."""
        return {
            "requests": self.n_requests,
            "users": self.n_users,
            "countries": self.n_countries,
            "domains": self.n_domains,
        }

    # ------------------------------------------------------------------
    # Figure inputs (single-pass columnar aggregations)
    # ------------------------------------------------------------------
    def reports(self) -> TableSlice:
        """All successfully completed check reports (lazy view)."""
        return TableSlice(
            self._table, [row for row in self._report_row if row >= 0]
        )

    def variation_counts(self) -> Counter:
        """domain -> number of requests whose variation beat the guard.

        This is exactly Fig. 1's y-axis.
        """
        table = self._table
        counts: Counter = Counter()
        for i, row in enumerate(self._report_row):
            if row >= 0 and table.row_has_variation(row):
                counts[table.domains.value(self._r_domain_id[i])] += 1
        return counts

    def ratios_by_domain(self, *, only_variation: bool = True) -> dict[str, list[float]]:
        """domain -> list of per-check max/min ratios (Fig. 2's input)."""
        table = self._table
        out: dict[str, list[float]] = {}
        for i, row in enumerate(self._report_row):
            if row < 0:
                continue
            ratio = table.ratio[row]
            if ratio is None:
                continue
            if only_variation and ratio <= table.guard[row]:
                continue
            domain = table.domains.value(self._r_domain_id[i])
            out.setdefault(domain, []).append(ratio)
        return out

    def checks_for_domain(self, domain: str) -> list[CheckRecord]:
        """Every check the crowd ran against one domain."""
        did = self._table.domains.id_of(domain)
        if did is None:
            return []
        return [
            self.record(i)
            for i, record_did in enumerate(self._r_domain_id)
            if record_did == did
        ]

    # ------------------------------------------------------------------
    # Columnar (de)serialization -- the io layer's compact layout
    # ------------------------------------------------------------------
    def record_columns(self) -> dict:
        """The record-level columns as JSON-ready dicts.

        Domain/url/currency ids reference the report table's pools (the
        io layer serializes those with :meth:`ReportTable.to_columns`);
        the record-only pools ride along under ``"pools"``.
        """
        return {
            "pools": {
                "users": self._users.values,
                "user_countries": self._user_countries.values,
                "failures": self._failures.values,
            },
            "user": self._r_user_id,
            "country": self._r_country_id,
            "day": self._r_day,
            "domain": self._r_domain_id,
            "url": self._r_url_id,
            "outcome_url": self._o_url_id,
            "outcome_user": self._o_user_id,
            "user_amount": self._o_amount,
            "user_currency": self._o_currency_id,
            "failure": self._o_failure_id,
            "report_row": self._report_row,
        }

    @classmethod
    def from_columns(
        cls, table: ReportTable, pools: dict, records: dict
    ) -> "CrowdDataset":
        """Rebuild a dataset from a table plus :meth:`record_columns` data."""
        dataset = cls()
        dataset._table = table
        try:
            dataset._users = StringPool(pools["users"])
            dataset._user_countries = StringPool(pools["user_countries"])
            dataset._failures = StringPool(pools["failures"])
            dataset._r_user_id = [int(v) for v in records["user"]]
            n = len(dataset._r_user_id)
            dataset._r_country_id = [int(v) for v in records["country"]]
            dataset._r_day = [int(v) for v in records["day"]]
            dataset._r_domain_id = [int(v) for v in records["domain"]]
            dataset._r_url_id = [int(v) for v in records["url"]]
            dataset._o_url_id = [int(v) for v in records["outcome_url"]]
            dataset._o_user_id = [int(v) for v in records["outcome_user"]]
            dataset._o_amount = [
                None if v is None else float(v) for v in records["user_amount"]
            ]
            dataset._o_currency_id = [int(v) for v in records["user_currency"]]
            dataset._o_failure_id = [int(v) for v in records["failure"]]
            dataset._report_row = [int(v) for v in records["report_row"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad crowd record columns: {exc}") from exc
        cols = (
            dataset._r_country_id, dataset._r_day, dataset._r_domain_id,
            dataset._r_url_id, dataset._o_url_id, dataset._o_user_id,
            dataset._o_amount, dataset._o_currency_id,
            dataset._o_failure_id, dataset._report_row,
        )
        if any(len(col) != n for col in cols):
            raise ValueError("crowd record columns have mismatched lengths")
        if any(
            row < -1 or row >= len(table) for row in dataset._report_row
        ):
            raise ValueError("report_row references outside the report table")
        _check_ids("user", dataset._r_user_id, dataset._users)
        _check_ids("outcome user", dataset._o_user_id, dataset._users)
        _check_ids("country", dataset._r_country_id, dataset._user_countries)
        _check_ids("failure", dataset._o_failure_id, dataset._failures)
        _check_ids("domain", dataset._r_domain_id, table.domains)
        _check_ids("url", dataset._r_url_id, table.urls)
        _check_ids("outcome url", dataset._o_url_id, table.urls)
        _check_ids(
            "user currency", dataset._o_currency_id, table.currencies,
            sentinel=NO_CURRENCY,
        )
        return dataset

    def __repr__(self) -> str:
        return f"CrowdDataset({len(self)} records)"
