"""IP address plan and geo-IP database.

The paper observes that "our different vantage points access always the same
retailer site, but can be displayed prices on different currencies (the
local one) because retailers typically geo-locate their IP address".  That
mechanism is the heart of the simulation: retailer servers look up the
client IP in a geo-IP database and localize currency, number format, and --
for discriminating retailers -- price.

:class:`IPAddressPlan` deterministically carves an IPv4-like space into
per-country/city blocks and can allocate addresses for vantage points and
crowd users.  :class:`GeoIPDatabase` performs longest-prefix lookup over the
allocated blocks, like a real MaxMind-style database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["GeoLocation", "IPAddressPlan", "GeoIPDatabase", "ip_to_int", "int_to_ip"]


@dataclass(frozen=True)
class GeoLocation:
    """A resolved location: ISO country code, country name, city."""

    country_code: str
    country: str
    city: str = ""

    def __str__(self) -> str:
        return f"{self.country} - {self.city}" if self.city else self.country


def ip_to_int(ip: str) -> int:
    """Convert dotted-quad to integer; raises ValueError when malformed."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"bad IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"bad IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert integer to dotted-quad."""
    if not 0 <= value < 2**32:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


#: Country/city seed data: ISO code, country name, cities.  Covers the 18
#: crowd countries (paper §3.2) and all vantage-point locations (Fig. 7).
COUNTRY_SEED: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("US", "USA", ("Boston", "Chicago", "Lincoln", "Los Angeles", "New York", "Albany")),
    ("GB", "UK", ("London",)),
    ("ES", "Spain", ("Barcelona", "Madrid")),
    ("FI", "Finland", ("Tampere", "Helsinki")),
    ("DE", "Germany", ("Berlin", "Munich")),
    ("BE", "Belgium", ("Liege", "Brussels")),
    ("BR", "Brazil", ("Sao Paulo", "Rio de Janeiro")),
    ("IT", "Italy", ("Milan", "Rome")),
    ("FR", "France", ("Paris", "Lyon")),
    ("NL", "Netherlands", ("Amsterdam",)),
    ("PL", "Poland", ("Warsaw", "Krakow")),
    ("PT", "Portugal", ("Lisbon",)),
    ("GR", "Greece", ("Athens",)),
    ("IE", "Ireland", ("Dublin",)),
    ("SE", "Sweden", ("Stockholm",)),
    ("CH", "Switzerland", ("Zurich",)),
    ("CA", "Canada", ("Toronto",)),
    ("AU", "Australia", ("Sydney",)),
    ("JP", "Japan", ("Tokyo",)),
    ("IN", "India", ("Bangalore",)),
)

COUNTRY_NAMES: dict[str, str] = {code: name for code, name, _ in COUNTRY_SEED}


@dataclass(frozen=True)
class _Block:
    """A /16-style block assigned to one city."""

    base: int
    size: int
    location: GeoLocation


class IPAddressPlan:
    """Deterministic allocation of address blocks to cities.

    Every (country, city) pair from :data:`COUNTRY_SEED` receives a /16
    block starting at ``10.0.0.0``-style bases (the exact numbers carry no
    meaning; only that blocks are disjoint and deterministic).
    """

    BLOCK_SIZE = 1 << 16

    def __init__(self) -> None:
        self._blocks: list[_Block] = []
        self._by_city: dict[tuple[str, str], _Block] = {}
        self._next_host: dict[tuple[str, str], int] = {}
        base = ip_to_int("20.0.0.0")
        for code, country, cities in COUNTRY_SEED:
            for city in cities:
                location = GeoLocation(code, country, city)
                block = _Block(base=base, size=self.BLOCK_SIZE, location=location)
                self._blocks.append(block)
                self._by_city[(code, city)] = block
                self._next_host[(code, city)] = 10
                base += self.BLOCK_SIZE

    # ------------------------------------------------------------------
    def allocate(self, country_code: str, city: Optional[str] = None) -> str:
        """Allocate the next unused address in the city's block.

        If ``city`` is omitted the country's first seeded city is used.
        """
        key = self._resolve_key(country_code, city)
        block = self._by_city[key]
        host = self._next_host[key]
        if host >= block.size - 1:
            raise RuntimeError(f"address block exhausted for {key}")
        self._next_host[key] = host + 1
        return int_to_ip(block.base + host)

    def _resolve_key(self, country_code: str, city: Optional[str]) -> tuple[str, str]:
        code = country_code.upper()
        if city is not None:
            key = (code, city)
            if key not in self._by_city:
                raise KeyError(f"unknown city {city!r} in {code}")
            return key
        for seed_code, _, cities in COUNTRY_SEED:
            if seed_code == code:
                return (code, cities[0])
        raise KeyError(f"unknown country code {country_code!r}")

    @property
    def blocks(self) -> list[_Block]:
        return list(self._blocks)

    def database(self) -> "GeoIPDatabase":
        """A lookup database over this plan's blocks."""
        return GeoIPDatabase(self._blocks)


class GeoIPDatabase:
    """Maps an IP address to its :class:`GeoLocation` via block lookup."""

    def __init__(self, blocks: list[_Block]) -> None:
        self._blocks = sorted(blocks, key=lambda b: b.base)

    def lookup(self, ip: str) -> Optional[GeoLocation]:
        """Resolve ``ip`` or return ``None`` for unallocated space."""
        try:
            value = ip_to_int(ip)
        except ValueError:
            return None
        # Binary search over sorted disjoint blocks.
        lo, hi = 0, len(self._blocks) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self._blocks[mid]
            if value < block.base:
                hi = mid - 1
            elif value >= block.base + block.size:
                lo = mid + 1
            else:
                return block.location
        return None

    def country_code(self, ip: str) -> Optional[str]:
        """Country code of ``ip``, or ``None``."""
        location = self.lookup(ip)
        return location.country_code if location else None
