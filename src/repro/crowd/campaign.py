"""The beta-test campaign: simulated crowd usage of $heriff.

Reproduces the data-generating process behind §3.2's dataset: over the
Jan-May 2013 window, users open product pages on shops they care about,
highlight the price, and click the $heriff button.  Domain choice blends

* global popularity (big brands get checked most -- Fig. 1's head),
* the user's category interests (a cyclist checks bike shops), and
* the long tail of small shops (most of the ~600 domains, almost all of
  which turn out to price uniformly -- the discovery problem).

Imperfect users are part of the model: with a small probability the
highlight lands on a *recommended-product* price instead of the product
price (the kind of crowd noise §3.2 says had to be cleaned before
analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.checkpoint import (
    MID_DAY,
    CheckpointMismatchError,
    RunCheckpoint,
    barrier,
    capture_run_state,
    restore_run_state,
    run_fingerprint,
)
from repro.core.backend import SheriffBackend
from repro.core.extension import PreparedCheck, SheriffExtension
from repro.crowd.dataset import CheckRecord, CrowdDataset
from repro.crowd.population import CrowdUser, build_population
from repro.ecommerce.templates import selector_on_day
from repro.ecommerce.world import World
from repro.htmlmodel.dom import Document, Element
from repro.htmlmodel.selectors import Selector, SelectorError
from repro.net.clock import SECONDS_PER_DAY
from repro.util import stable_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import ExecConfig

__all__ = ["CampaignConfig", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of the beta campaign (defaults = the paper's numbers)."""

    n_checks: int = 1500
    population_size: int = 340
    start_day: int = 0  # 2013-01-01
    end_day: int = 150  # ~end of May
    seed: int = 2013
    #: Probability a user highlights a decoy price instead of the product
    #: price (crowd noise).
    p_wrong_highlight: float = 0.03
    #: Probability the user arrived via a price aggregator (their Referer
    #: header may earn them a personal discount the fan-out cannot see).
    p_referred: float = 0.05
    #: Weight multiplier for domains matching a user's interests.
    interest_boost: float = 3.0
    aggregator_referer: str = "http://www.pricegrabber.com/search"

    def __post_init__(self) -> None:
        if self.n_checks <= 0:
            raise ValueError("n_checks must be positive")
        if self.end_day <= self.start_day:
            raise ValueError("campaign window must be non-empty")
        if not 0.0 <= self.p_wrong_highlight <= 1.0:
            raise ValueError("p_wrong_highlight must be a probability")
        if not 0.0 <= self.p_referred <= 1.0:
            raise ValueError("p_referred must be a probability")


def run_campaign(
    world: World,
    backend: SheriffBackend,
    config: Optional[CampaignConfig] = None,
    *,
    exec_config: Optional["ExecConfig"] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> CrowdDataset:
    """Run the campaign and return the crowdsourced dataset.

    The world's virtual clock is advanced through the campaign window, so
    checks carry realistic timestamps (and FX rates move under them).

    The campaign runs in two phases.  Phase one replays every *click*
    chronologically in this process: the user's own page load (which
    drives the world clock), the highlight, the anchor derivation -- all
    the state the next click may depend on.  Phase two submits the
    prepared requests as one explicitly-scheduled batch
    (:meth:`~repro.core.backend.SheriffBackend.check_batch` with
    ``start_times``): every fan-out runs at its own click instant on a
    forked burst clock, so the reports are byte-identical whether the
    batch executes inline or sharded across ``exec_config.workers``
    workers.

    ``checkpoint_dir`` makes the run kill-safe: the click stream is
    segmented by day, each day runs prepare-then-submit as its own batch,
    and every completed day is durably committed (dataset shard + run
    state) before the next starts -- see :mod:`repro.checkpoint`.
    ``resume=True`` against a *freshly built* world restores the last
    committed state and continues; the finished dataset is byte-identical
    to an uninterrupted checkpointed run at any worker count, memo on or
    off.  Note the day-segmented schedule interleaves prepares and
    fan-outs, so server request counters (the pricing nonce) evolve
    differently than under the single-batch plan: checkpointed and
    non-checkpointed runs are each internally deterministic but not
    byte-identical to each other.
    """
    config = config or CampaignConfig()
    rng = stable_rng(config.seed, "campaign")
    extension = SheriffExtension(backend, world.network)
    users = build_population(
        world.plan, size=config.population_size, seed=config.seed
    )

    base_weights = world.crowd_weights()
    domains = sorted(base_weights)
    categories = {
        domain: world.retailer(domain).category for domain in domains
    }

    # Pre-compute per-user cumulative domain weights lazily (340 users x
    # 600 domains is fine, but most users never check; build on demand).
    per_user_weights: dict[str, list[float]] = {}

    def weights_for(user: CrowdUser) -> list[float]:
        cached = per_user_weights.get(user.user_id)
        if cached is not None:
            return cached
        weights = [
            base_weights[domain]
            * (config.interest_boost if categories[domain] in user.interests else 1.0)
            for domain in domains
        ]
        per_user_weights[user.user_id] = weights
        return weights

    user_weights = [user.activity for user in users]
    window_seconds = (config.end_day - config.start_day) * SECONDS_PER_DAY
    offsets = sorted(rng.uniform(0, window_seconds) for _ in range(config.n_checks))

    def prepare_clicks(
        batch_offsets: list[float],
    ) -> list[tuple[CrowdUser, str, int, str, PreparedCheck]]:
        # Phase one: the client side of every click, in chronological
        # order -- the user's own page load (which drives the world
        # clock), the highlight, the anchor derivation.
        clicks: list[tuple[CrowdUser, str, int, str, PreparedCheck]] = []
        for offset in batch_offsets:
            timestamp = config.start_day * SECONDS_PER_DAY + offset
            if timestamp > world.clock.now:
                world.clock.advance_to(timestamp)
            user = rng.choices(users, weights=user_weights, k=1)[0]
            domain = rng.choices(domains, weights=weights_for(user), k=1)[0]
            retailer = world.retailer(domain)
            product = rng.choice(retailer.catalog.products)
            url = f"http://{domain}{product.path}"
            # The user's eyes track the page actually served today
            # (churning templates), exactly like the crawl operator's
            # anchor step.
            finder = _make_finder(
                selector_on_day(
                    retailer.template, int(timestamp // SECONDS_PER_DAY)
                ),
                wrong=rng.random() < config.p_wrong_highlight,
            )
            referer = (
                config.aggregator_referer
                if rng.random() < config.p_referred
                else None
            )
            prepared = extension.prepare_check(
                user.client, url, finder, origin=user.user_id, referer=referer
            )
            clicks.append(
                (user, domain, int(timestamp // SECONDS_PER_DAY), url, prepared)
            )
        return clicks

    def submit_clicks(
        clicks: list, dataset: CrowdDataset, executor, *,
        checkpointing: bool = False,
    ) -> None:
        # Phase two: one scheduled batch of every click that reached the
        # backend, fanned out at each click's own instant (and optionally
        # sharded across workers -- bytes are identical either way).
        # Reports stream straight into the dataset's columnar spine: the
        # sink attaches each report to its click and flushes every click
        # whose fate is settled into the table, releasing the click (and
        # with it the report dataclass -- the table does not retain it)
        # immediately.  No intermediate report list exists at any scale.
        ready = [click[4] for click in clicks if click[4].request is not None]
        cursor = 0  # next click to flush into the dataset
        filled = 0  # ready checks whose report has streamed in

        def flush_settled() -> None:
            nonlocal cursor
            while cursor < len(clicks):
                user, domain, day_index, url, prepared = clicks[cursor]
                if prepared.request is not None and prepared.outcome.report is None:
                    break  # its report has not streamed in yet
                dataset.add(
                    CheckRecord(
                        user_id=user.user_id,
                        user_country=user.country_code,
                        day_index=day_index,
                        domain=domain,
                        url=url,
                        outcome=prepared.outcome,
                    )
                )
                clicks[cursor] = None  # type: ignore[call-overload]
                cursor += 1

        def sink(report) -> None:
            nonlocal filled
            prepared = ready[filled]
            ready[filled] = None  # type: ignore[call-overload]
            filled += 1
            prepared.outcome.report = report
            if checkpointing:
                barrier(MID_DAY)
            flush_settled()

        backend.check_batch(
            [prepared.request for prepared in ready],
            start_times=[prepared.start_ts for prepared in ready],
            executor=executor,
            sink=sink,
        )
        flush_settled()  # trailing clicks that never reached the backend

    if checkpoint_dir is None:
        # The single-batch plan: all prepares, then one scheduled batch.
        clicks = prepare_clicks(offsets)
        dataset = CrowdDataset()
        executor = exec_config.create(world) if exec_config is not None else None
        try:
            submit_clicks(clicks, dataset, executor)
        finally:
            if executor is not None:
                executor.close()
        return dataset

    # Checkpointed: the click stream segmented by day, each day committed
    # before the next starts.
    checkpoint = RunCheckpoint.open(
        checkpoint_dir,
        kind="campaign",
        fingerprint=run_fingerprint("campaign", world.config, config),
        resume=resume,
    )
    groups: list[tuple[int, list[float]]] = []
    for offset in offsets:
        day = int((config.start_day * SECONDS_PER_DAY + offset) // SECONDS_PER_DAY)
        if groups and groups[-1][0] == day:
            groups[-1][1].append(offset)
        else:
            groups.append((day, [offset]))
    committed = checkpoint.committed
    if len(committed) > len(groups):
        raise CheckpointMismatchError(
            f"checkpoint holds {len(committed)} segments, campaign only "
            f"has {len(groups)} days with clicks"
        )
    for record, (day, _) in zip(committed, groups):
        if record["day"] != day:
            raise CheckpointMismatchError(
                f"checkpoint segment {record['seq']} covers day "
                f"{record['day']}, campaign expects day {day}"
            )

    dataset = CrowdDataset()
    checkpoint.fold_into(dataset)
    user_clients = {user.user_id: user.client for user in users}
    state = checkpoint.load_last_state()
    if state is not None:
        restore_run_state(
            state, world, backend, rng=rng, user_clients=user_clients
        )
    executor = exec_config.create(world) if exec_config is not None else None
    try:
        for seq, (day, day_offsets) in enumerate(groups):
            if seq < len(committed):
                continue  # durable on disk, already folded into dataset
            clicks = prepare_clicks(day_offsets)
            staging = CrowdDataset()
            submit_clicks(clicks, staging, executor, checkpointing=True)
            checkpoint.commit_segment(
                day=day,
                dataset=staging,
                state=capture_run_state(
                    world, backend, rng=rng, user_clients=user_clients
                ),
            )
            dataset.append_segment(staging)
    finally:
        if executor is not None:
            executor.close()
    return dataset


def _make_finder(price_selector: str, *, wrong: bool):
    """The user's eyes: locate the price (or, rarely, a decoy) on a page."""

    def find(document: Document) -> Optional[Element]:
        if wrong:
            decoys = _decoy_candidates(document)
            if decoys:
                return decoys[0]
        try:
            return Selector.parse(price_selector).select_one(document)
        except SelectorError:
            return None

    return find


def _decoy_candidates(document: Document) -> list[Element]:
    """Price-looking nodes inside the recommendations block."""
    try:
        cards = Selector.parse("section.recommendations span").select(document)
    except SelectorError:
        return []
    return [card for card in cards if any(ch.isdigit() for ch in card.text())]
