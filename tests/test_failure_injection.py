"""Failure injection: the pipeline must degrade, never lie.

A crowd-sourced measurement system meets broken pages, flaky networks and
hostile markup constantly; these tests inject each failure class and
assert the reports stay honest (failed observations marked failed, no
phantom variation, campaign keeps going)."""

from __future__ import annotations

import pytest

from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.extraction import extract_price
from repro.core.highlight import PriceAnchor
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.ecommerce.world import WorldConfig, build_world
from repro.net.http import HttpRequest, HttpResponse, HttpStatus
from repro.net.transport import FunctionServer


class BrokenShop:
    """A server that degrades per request: truncated HTML, then garbage,
    then a 500, then an empty price node."""

    def __init__(self) -> None:
        self.hits = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        self.hits += 1
        mode = self.hits % 4
        if mode == 0:
            return HttpResponse.html(
                "<html><body><div id='product'><span id='product-price'"
            )  # truncated mid-tag
        if mode == 1:
            return HttpResponse.html("<<<]]&&& not html at all >>>")
        if mode == 2:
            return HttpResponse(status=HttpStatus.INTERNAL_SERVER_ERROR,
                                body="oops")
        return HttpResponse.html(
            "<html><body><span id='product-price'></span></body></html>"
        )


class TestBrokenPages:
    def test_backend_survives_broken_shop(self, fresh_world):
        world = fresh_world
        world.network.register("broken.example", BrokenShop())
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        report = backend.check(CheckRequest(
            url="http://broken.example/anything",  # 404s are fine too
            anchor=PriceAnchor(selector="#product-price", node_path="/0/0/0",
                               sample_text="$1"),
        ))
        # Every observation failed but carries a reason, and the report
        # draws no conclusion.
        assert all(not obs.ok and obs.error for obs in report.observations)
        assert report.ratio is None
        assert not report.has_variation

    def test_extraction_from_garbage_never_raises(self):
        anchor = PriceAnchor(selector=".price", node_path="/0", sample_text="")
        for garbage in ("", "<<<>>>", "<a" * 500, "\x00\x01", "]]>"):
            result = extract_price(garbage, anchor)
            assert not result.ok

    def test_price_split_across_child_nodes(self):
        """Hostile markup: the price text is fragmented over child spans --
        text() reassembly must still parse it."""
        html = (
            "<div><p id='p'><span>1</span><span>.234</span>"
            "<span>,56</span><span> €</span></p></div>"
        )
        anchor = PriceAnchor(selector="#p", node_path="/0/0", sample_text="")
        result = extract_price(html, anchor)
        assert result.ok
        assert result.amount == pytest.approx(1234.56)
        assert result.currency == "EUR"


class TestFlakyNetwork:
    def test_lossy_crawl_stays_consistent(self):
        """At 10% loss the crawl loses observations, not truth: every
        surviving report's variation flag must match the lossless run."""
        lossless = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))
        lossy = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0,
                                        loss_rate=0.10))
        verdicts = {}
        for label, world in (("clean", lossless), ("lossy", lossy)):
            backend = SheriffBackend(world.network, world.vantage_points, world.rates)
            plan = build_plan(world, domains=["www.digitalrev.com"],
                              products_per_retailer=6)
            crawl = run_crawl(world, backend, plan, CrawlConfig(days=1))
            verdicts[label] = {
                r.url: r.has_variation for r in crawl.reports
                if len(r.valid_observations()) >= 2
            }
        assert verdicts["lossy"]  # something survived
        for url, flag in verdicts["lossy"].items():
            assert verdicts["clean"][url] == flag

    def test_total_blackout_campaign_continues(self, fresh_world):
        """Checks against an unreachable host fail soft in a campaign."""
        from repro.core.extension import SheriffExtension, UserClient
        from repro.net.geoip import GeoLocation
        from repro.net.useragent import profile_for

        world = fresh_world
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        extension = SheriffExtension(backend, world.network)
        user = UserClient(
            name="u", location=GeoLocation("ES", "Spain", "Barcelona"),
            ip=world.plan.allocate("ES", "Barcelona"),
            profile=profile_for("firefox", "linux"),
        )
        outcome = extension.check_product(
            user, "http://gone.example/p/1", lambda doc: None
        )
        assert not outcome.ok
        assert "failed" in outcome.failure


class TestHostileTemplates:
    def test_decoy_heavy_page_defeats_naive_regex(self, tiny_world):
        """§2.2: 'a simple search for dollar or euro sign would fail since
        typically product pages include additional recommended or
        advertised products along with their prices.'  Every rendered page
        must carry several price-looking strings of which only one is the
        product's -- so symbol-grepping is ambiguous where the anchor is
        exact."""
        import re

        from repro.htmlmodel.parser import parse_html
        from repro.htmlmodel.selectors import Selector

        for domain in ("www.amazon.com", "www.guess.eu",
                       "www.digitalrev.com", "www.hotels.com"):
            retailer = tiny_world.retailer(domain)
            product = retailer.catalog.products[0]
            vantage = tiny_world.vantage_points[8]  # USA - Boston
            response = vantage.fetch(
                tiny_world.network, f"http://{domain}{product.path}"
            )
            truth = Selector.parse(retailer.template.price_selector).select_one(
                parse_html(response.body)
            ).text(strip=True)
            prices = re.findall(r"\$[\d,.]+", response.body)
            assert len(prices) >= 4, domain  # ambiguous for a grep
            decoys = [p for p in prices if p != truth]
            assert len(decoys) >= 3, domain  # and most candidates are wrong
