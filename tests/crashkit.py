"""Crash-injection harness: SIGKILL a checkpointed run, resume, compare.

The kit runs a campaign, crawl, or scenario world in a **subprocess**
driven by a JSON spec, optionally self-SIGKILLing at the Nth firing of a
named checkpoint barrier (``repro.checkpoint.barriers``) -- a real
``SIGKILL``, no cleanup handlers, exactly what a crash leaves on disk.
A second driver run with ``resume=True`` continues from the checkpoint;
the host test compares the result files (dataset digest, archive hash
chain, detection scores) against an uninterrupted reference run.

Spec fields (JSON object)::

    kind            "campaign" | "crawl" | "scenario" | "serve"
    world           WorldConfig kwargs           (campaign / crawl kinds)
    scenario        scenario name                (scenario kind)
    seed            run seed                     (default 2013)
    campaign        CampaignConfig kwargs        (campaign kind)
    crawl           CrawlConfig kwargs           (crawl kind)
    plan            {"n_domains": K, "products_per_retailer": P}  (crawl)
    workers, mode   executor cell (1/"local" = inline)
    planner         shard planner, "cost" (default) | "stable"
    memo            burst memo on/off (default true)
    checkpoint_dir  where day-segments spill
    resume          continue a committed prefix (default false)
    out             dataset file the driver writes (columnar JSONL)
    result          result JSON the driver writes (atomically, at exit)
    kill            {"point": <barrier name>, "count": N} | null --
                    die at the Nth firing of that barrier
    worker_faults   [{"worker": i, "batch": d, "point": p}, ...] --
                    inject the fault ``p`` (a ``FAULT_POINTS`` name, e.g.
                    SIGKILL worker *i* mid-batch of day-batch *d*) into
                    the run's :class:`ProcessExecutor`; the supervisor
                    must recover and the run must stay byte-identical
    max_worker_restarts   restart budget per shard (default 3)

The result JSON records the saved dataset's SHA-256, row count, the
backend's archive hash chain (chain equality == archive-stream byte
identity), the driver's peak RSS in MB, and -- for scenario runs -- the
detection score against the scenario's ground truth.

To add a kill point: call ``barrier("your-name")`` at the new
crash window, add the name to ``repro.checkpoint.barriers.BARRIER_NAMES``,
and kill specs can target it immediately -- the kit is name-agnostic.

To add a worker-fault schedule: build a :class:`FaultPlan` (explicit
``(worker, batch, point)`` triples, or :meth:`FaultPlan.seeded` for a
deterministic random schedule) and either ``plan.install()`` it around
an in-process run or pass its ``plan.specs()`` as the driver's
``worker_faults`` field.  Coordinator kills (``kill``) and worker faults
(``worker_faults``) compose: a spec can SIGKILL the coordinator at the
``worker-respawn`` barrier while a worker fault is mid-recovery.
"""

from __future__ import annotations

import json
import os
import resource
import signal
import subprocess
import sys
from pathlib import Path

_SELF = Path(__file__).resolve()
_SRC = _SELF.parent.parent / "src"

#: Barrier names worth killing at, re-exported for test parametrization.
#: ``worker-respawn`` is deliberately not here: it only fires while the
#: exec supervisor recovers a dead worker, so it belongs to fault-
#: carrying specs (tests/test_worker_chaos.py), not the plain kill grids.
KILL_POINTS = ("mid-day", "segment-flush", "manifest-mid-write")


# ----------------------------------------------------------------------
# Worker-fault schedules
# ----------------------------------------------------------------------
class FaultPlan:
    """A deterministic worker-fault schedule: kill worker *i* at batch *d*.

    Faults are ``(worker, batch, point)`` triples (``point`` is a
    :data:`repro.exec.process.FAULT_POINTS` name).  The plan is the
    fault hook: the executor consults it at every dispatch -- including
    the re-dispatch after a recovery, so a plan listing the same
    ``(worker, batch)`` twice kills the replacement worker too (how the
    quarantine tests exhaust a restart budget).  Each triple fires once.
    """

    def __init__(self, faults) -> None:
        self._faults: list[tuple[int, int, str]] = [
            (int(w), int(b), str(p)) for w, b, p in faults
        ]

    @classmethod
    def from_specs(cls, specs) -> "FaultPlan":
        """From the driver-spec form: dicts with worker/batch/point."""
        return cls(
            (s["worker"], s["batch"], s["point"]) for s in specs
        )

    @classmethod
    def seeded(cls, seed: int, *, workers: int, batches: int,
               n_faults: int,
               points=("before-batch", "mid-batch", "after-batch"),
               ) -> "FaultPlan":
        """A seeded random schedule -- deterministic chaos.

        Draws ``n_faults`` (worker, batch, point) triples from the full
        grid with an isolated :class:`random.Random`; the same seed
        always produces the same schedule, so a failing chaos run is
        replayable from its seed alone.
        """
        import random

        rng = random.Random(seed)
        return cls(
            (rng.randrange(workers), rng.randrange(batches),
             rng.choice(points))
            for _ in range(n_faults)
        )

    def specs(self) -> list[dict]:
        """The driver-spec form (JSON-ready ``worker_faults`` value)."""
        return [
            {"worker": w, "batch": b, "point": p}
            for w, b, p in self._faults
        ]

    def __call__(self, worker: int, batch: int):
        for i, (w, b, point) in enumerate(self._faults):
            if w == worker and b == batch:
                del self._faults[i]
                return point
        return None

    def install(self):
        """Install as the process-wide fault hook; returns the previous."""
        from repro.exec.process import install_fault_hook

        return install_fault_hook(self)

    def __repr__(self) -> str:
        return f"FaultPlan({self._faults!r})"


# ----------------------------------------------------------------------
# Host side: run the driver in a subprocess
# ----------------------------------------------------------------------
def _driver_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _killpg(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


def run_driver(spec: dict, *, timeout: float = 600.0) -> int:
    """Run one driver subprocess for ``spec``; return its exit code.

    The child gets its own process group so a hung run (and any workers
    it spawned) can be killed as a unit; ``-signal.SIGKILL`` is the
    expected return code of a run that hit its kill point.

    Waits on the driver *process*, never its pipes: a SIGKILLed driver
    running a process-mode cell leaves pool workers behind (they block
    on the pool's call queue, and -- being forked -- they inherit the
    driver's stderr), so pipe EOF would arrive only when the workers
    die.  ``proc.wait`` returns the instant the driver itself does; the
    process-group SIGKILL then reaps the orphans, after which draining
    stderr is safe.
    """
    spec_path = Path(spec["result"]).with_suffix(".spec.json")
    spec_path.parent.mkdir(parents=True, exist_ok=True)
    spec_path.write_text(json.dumps(spec, sort_keys=True), encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, str(_SELF), str(spec_path)],
        env=_driver_env(),
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        _killpg(proc)
        proc.wait()
        raise
    _killpg(proc)
    err = proc.stderr.read()
    proc.stderr.close()
    if proc.returncode not in (0, -signal.SIGKILL):
        raise AssertionError(
            f"driver exited {proc.returncode}:\n{err.decode(errors='replace')}"
        )
    return proc.returncode


def run_until_killed(spec: dict, *, timeout: float = 600.0) -> None:
    """Run a kill-carrying spec; assert the driver really died by SIGKILL."""
    assert spec.get("kill"), "spec has no kill point"
    code = run_driver(spec, timeout=timeout)
    assert code == -signal.SIGKILL, (
        f"expected the driver to be SIGKILLed at "
        f"{spec['kill']['point']}#{spec['kill']['count']}, it exited {code}"
    )


def run_to_completion(spec: dict, *, timeout: float = 600.0) -> dict:
    """Run a spec to completion and return its result JSON."""
    code = run_driver(spec, timeout=timeout)
    assert code == 0, f"driver exited {code}"
    return json.loads(Path(spec["result"]).read_text(encoding="utf-8"))


def file_sha256(path) -> str:
    import hashlib

    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


# ----------------------------------------------------------------------
# Driver side: executed as __main__ in the subprocess
# ----------------------------------------------------------------------
def _install_kill(point: str, count: int) -> None:
    from repro.checkpoint import BARRIER_NAMES, install_barrier_hook

    if point not in BARRIER_NAMES:
        raise ValueError(f"unknown kill point {point!r}")
    fired = [0]

    def hook(name: str) -> None:
        if name == point:
            fired[0] += 1
            if fired[0] == count:
                os.kill(os.getpid(), signal.SIGKILL)

    install_barrier_hook(hook)


def _exec_config(spec: dict):
    from repro.exec import ExecConfig

    workers = int(spec.get("workers", 1))
    mode = spec.get("mode", "local")
    planner = spec.get("planner", "cost")
    if workers == 1 and mode == "local":
        return None
    return ExecConfig(
        workers=workers, mode=mode, planner=planner,
        max_worker_restarts=int(spec.get("max_worker_restarts", 3)),
    )


def _backend(world, spec: dict):
    from repro.core.backend import SheriffBackend
    from repro.core.burstcache import BurstCache

    return SheriffBackend(
        world.network,
        world.vantage_points,
        world.rates,
        burst_cache=BurstCache(enabled=bool(spec.get("memo", True))),
    )


def _drive_campaign(spec: dict) -> dict:
    from repro.crowd.campaign import CampaignConfig, run_campaign
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.io import save_crowd_dataset

    world = build_world(WorldConfig(**spec.get("world", {})))
    backend = _backend(world, spec)
    dataset = run_campaign(
        world,
        backend,
        CampaignConfig(**spec.get("campaign", {})),
        exec_config=_exec_config(spec),
        checkpoint_dir=spec["checkpoint_dir"],
        resume=bool(spec.get("resume", False)),
    )
    save_crowd_dataset(dataset, spec["out"], columnar=True)
    return {"rows": len(dataset), "archive_chain": backend.store.archive_chain}


def _drive_crawl(spec: dict) -> dict:
    from repro.crawler.crawl import CrawlConfig, run_crawl
    from repro.crawler.plan import build_plan
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.io import save_crawl_dataset

    world = build_world(WorldConfig(**spec.get("world", {})))
    backend = _backend(world, spec)
    plan_spec = spec.get("plan", {})
    plan = build_plan(
        world,
        domains=world.crawled_domains[: int(plan_spec.get("n_domains", 3))],
        products_per_retailer=int(plan_spec.get("products_per_retailer", 3)),
        seed=int(spec.get("seed", 2013)),
    )
    dataset = run_crawl(
        world,
        backend,
        plan,
        CrawlConfig(**spec.get("crawl", {})),
        exec_config=_exec_config(spec),
        checkpoint_dir=spec["checkpoint_dir"],
        resume=bool(spec.get("resume", False)),
    )
    save_crawl_dataset(dataset, spec["out"], columnar=True)
    return {"rows": len(dataset), "archive_chain": backend.store.archive_chain}


def _drive_scenario(spec: dict) -> dict:
    """Checkpointed scenario campaign, then crawl + detection scoring.

    Only the campaign is checkpointed (the kill lands there); a killed
    run never reaches the crawl, and the resumed run's crawl sees
    exactly the world state an uninterrupted run would have.
    """
    from repro.analysis.cleaning import clean_reports
    from repro.analysis.detection import score_detection
    from repro.crowd.campaign import CampaignConfig, run_campaign
    from repro.io import save_crowd_dataset
    from repro.scenarios import get_scenario
    from repro.scenarios.harness import run_scenario_crawl

    seed = int(spec.get("seed", 2013))
    scenario = get_scenario(spec["scenario"])
    world = scenario.build_world(seed)
    backend = _backend(world, spec)
    exec_config = _exec_config(spec)
    campaign = run_campaign(
        world,
        backend,
        CampaignConfig(
            n_checks=scenario.campaign_checks,
            population_size=scenario.campaign_population,
            start_day=0,
            end_day=scenario.campaign_end_day,
            seed=seed,
        ),
        exec_config=exec_config,
        checkpoint_dir=spec["checkpoint_dir"],
        resume=bool(spec.get("resume", False)),
    )
    save_crowd_dataset(campaign, spec["out"], columnar=True)
    crawl = run_scenario_crawl(
        world, backend, scenario, exec_config=exec_config, seed=seed
    )
    clean = clean_reports(
        crawl.reports, world.rates, require_repeatable=True
    )
    score = score_detection(
        crawl.reports, world.rates, scenario.truth,
        min_extent=scenario.min_extent, clean=clean,
    )
    return {
        "rows": len(campaign),
        "archive_chain": backend.store.archive_chain,
        "crawl_rows": len(crawl),
        "score": {
            "detected": {k: score.detected[k] for k in sorted(score.detected)},
            "magnitude": {
                k: score.magnitude[k] for k in sorted(score.magnitude)
            },
            "true_positives": score.true_positives,
            "false_positives": score.false_positives,
        },
    }


def _drive_serve(spec: dict) -> dict:
    """Drive the real HTTP service end to end over a local socket.

    First run (empty ``data_dir``): submit ``spec["job"]`` via
    ``POST /campaigns``.  A re-run over the same ``data_dir`` submits
    nothing -- ``build_app`` already resumed the incomplete job from its
    checkpoint, exactly what a restarted service does.  Either way the
    driver polls ``GET /jobs/job-000001`` until the job is terminal,
    downloads ``/results`` to ``spec["out"]``, and reports the final
    status.  A kill spec fires inside the job thread (the barrier hook
    is process-global), taking the whole service down mid-campaign.

    Extra spec fields: ``data_dir`` (the service's durable root; replaces
    ``checkpoint_dir``) and ``job`` (the ``POST /campaigns`` payload).
    """
    import threading
    import time as _time
    import urllib.request

    from repro.serve import ServeConfig, build_app

    service, server = build_app(ServeConfig(
        host="127.0.0.1", port=0,
        scale=spec.get("scale", "tiny"), seed=int(spec.get("seed", 2013)),
        data_dir=spec["data_dir"], exec_config=_exec_config(spec),
    ))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.port}"
    if not service.registry.jobs():
        body = json.dumps(spec.get("job", {})).encode("utf-8")
        with urllib.request.urlopen(
            urllib.request.Request(f"{base}/campaigns", data=body)
        ) as resp:
            assert resp.status == 202, resp.status
    while True:
        with urllib.request.urlopen(f"{base}/jobs/job-000001") as resp:
            status = json.loads(resp.read())
        if status["status"] in ("done", "failed"):
            break
        _time.sleep(0.05)
    assert status["status"] == "done", status
    with urllib.request.urlopen(f"{base}/jobs/job-000001/results") as resp:
        Path(spec["out"]).write_bytes(resp.read())
    server.shutdown()
    return {"rows": status["rows"], "checks": status["checks"]}


_DRIVERS = {
    "campaign": _drive_campaign,
    "crawl": _drive_crawl,
    "scenario": _drive_scenario,
    "serve": _drive_serve,
}


def _main(spec_path: str) -> int:
    spec = json.loads(Path(spec_path).read_text(encoding="utf-8"))
    kill = spec.get("kill")
    if kill:
        _install_kill(kill["point"], int(kill["count"]))
    if spec.get("worker_faults"):
        FaultPlan.from_specs(spec["worker_faults"]).install()
    result = _DRIVERS[spec["kind"]](spec)
    result["out_sha256"] = file_sha256(spec["out"])
    result["peak_rss_mb"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 2
    )
    blob = json.dumps(result, sort_keys=True).encode("utf-8")
    result_path = Path(spec["result"])
    tmp = result_path.with_name(result_path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, result_path)
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1]))
