"""Anchor derivation and selector-guided extraction tests."""

from __future__ import annotations

import pytest

from repro.core.extraction import extract_price, extract_price_from_document
from repro.core.highlight import AnchorError, PriceAnchor, derive_anchor
from repro.ecommerce.localization import LOCALES
from repro.ecommerce.templates import TEMPLATE_FAMILIES
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector, select_one
from repro.htmlmodel.serialize import to_html

SIMPLE = """
<html><body>
  <div id="main">
    <span id="the-price" class="price">$10.00</span>
    <span class="price">$2.00</span>
  </div>
  <div class="box"><em class="note">hi</em></div>
</body></html>
"""


class TestDeriveAnchor:
    def test_prefers_id(self):
        doc = parse_html(SIMPLE)
        el = select_one(doc, "#the-price")
        anchor = derive_anchor(doc, el)
        assert anchor.selector == "#the-price"
        assert anchor.sample_text == "$10.00"

    def test_class_chain_when_no_id(self):
        doc = parse_html(SIMPLE)
        el = select_one(doc, "em.note")
        anchor = derive_anchor(doc, el)
        assert anchor.selector is not None
        matches = Selector.parse(anchor.selector).select(doc)
        assert matches == [el]

    def test_nth_of_type_for_twins(self):
        html = "<div><span class=p>$1</span><span class=p>$2</span></div>"
        doc = parse_html(html)
        second = doc.child_elements()[0].child_elements()[1]
        anchor = derive_anchor(doc, second)
        assert anchor.selector is not None
        matches = Selector.parse(anchor.selector).select(doc)
        assert matches == [second]

    def test_node_path_always_present(self):
        doc = parse_html(SIMPLE)
        el = select_one(doc, "#the-price")
        anchor = derive_anchor(doc, el)
        resolved = doc.find_by_path(
            __import__("repro.htmlmodel.dom", fromlist=["NodePath"]).NodePath.parse(
                anchor.node_path
            )
        )
        assert resolved is el

    def test_foreign_element_rejected(self):
        doc_a = parse_html(SIMPLE)
        doc_b = parse_html(SIMPLE)
        el_b = select_one(doc_b, "#the-price")
        with pytest.raises(AnchorError):
            derive_anchor(doc_a, el_b)

    @pytest.mark.parametrize("template", TEMPLATE_FAMILIES, ids=lambda t: t.name)
    def test_template_prices_anchorable(self, template):
        """Every template family yields a unique, transferable anchor."""
        from tests.test_templates_retailer import make_view

        doc = template.render(make_view())
        price = select_one(doc, template.price_selector)
        anchor = derive_anchor(doc, price)
        assert anchor.selector is not None
        # Re-render with different structure seed (different promo banners)
        # and a different displayed price: anchor must still land on it.
        doc2 = template.render(
            make_view(template_seed=99, price_text="1 234,56 €")
        )
        extracted = extract_price_from_document(doc2, anchor)
        assert extracted.ok
        assert extracted.amount == pytest.approx(1234.56)
        assert extracted.currency == "EUR"


class TestExtraction:
    def _anchor(self) -> PriceAnchor:
        doc = parse_html(SIMPLE)
        return derive_anchor(doc, select_one(doc, "#the-price"))

    def test_extract_via_selector(self):
        extracted = extract_price(SIMPLE, self._anchor())
        assert extracted.ok
        assert extracted.method == "selector"
        assert extracted.amount == 10.0
        assert extracted.currency == "USD"

    def test_fallback_to_node_path(self):
        anchor = self._anchor()
        # Break the selector: page without the id.
        page = SIMPLE.replace('id="the-price" ', "")
        broken = PriceAnchor(
            selector="#the-price", node_path=anchor.node_path, sample_text="$10"
        )
        extracted = extract_price(page, broken)
        assert extracted.ok
        assert extracted.method == "node-path"
        assert extracted.amount == 10.0

    def test_ambiguous_selector_resolved_by_path(self):
        page = """
        <html><body>
          <div><span class="price">$1.00</span></div>
          <div><span class="price">$2.00</span></div>
        </body></html>
        """
        doc = parse_html(page)
        target = doc.child_elements()[0].child_elements()[0].child_elements()[1].child_elements()[0]
        assert target.text() == "$2.00"
        anchor = PriceAnchor(
            selector="span.price",
            node_path=str(target.node_path()),
            sample_text="$2.00",
        )
        extracted = extract_price(page, anchor)
        assert extracted.ok
        assert extracted.amount == 2.0

    def test_anchor_matches_nothing(self):
        anchor = PriceAnchor(selector="#gone", node_path="/9/9/9", sample_text="")
        extracted = extract_price(SIMPLE, anchor)
        assert not extracted.ok
        assert "anchor" in extracted.error

    def test_empty_node(self):
        page = "<div><span id='p'></span></div>"
        anchor = PriceAnchor(selector="#p", node_path="/0/0", sample_text="")
        extracted = extract_price(page, anchor)
        assert not extracted.ok
        assert "empty" in extracted.error

    def test_unparseable_price_text(self):
        page = "<div><span id='p'>call for price</span></div>"
        anchor = PriceAnchor(selector="#p", node_path="/0/0", sample_text="")
        extracted = extract_price(page, anchor)
        assert not extracted.ok
        assert "unparseable" in extracted.error

    def test_locale_hint_used(self):
        page = "<div><span id='p'>0,999</span></div>"
        anchor = PriceAnchor(selector="#p", node_path="/0/0", sample_text="")
        hinted = extract_price(page, anchor, locale_hint=LOCALES["DE"])
        assert hinted.ok
        assert hinted.amount == pytest.approx(0.999)

    def test_invalid_selector_in_anchor_falls_back(self):
        doc = parse_html(SIMPLE)
        el = select_one(doc, "#the-price")
        anchor = PriceAnchor(
            selector="[[[", node_path=str(el.node_path()), sample_text="$10.00"
        )
        extracted = extract_price(SIMPLE, anchor)
        assert extracted.ok
        assert extracted.method == "node-path"
