"""Minimal HTML document model: DOM tree, parser, selectors, serializer.

The $heriff extension works by letting a user *highlight a price* inside a
rendered retailer page, deriving a structural selector for the highlighted
node, and then re-applying that selector to copies of the page fetched from
other vantage points.  That loop needs a real document model, so this package
implements one from scratch:

* :mod:`repro.htmlmodel.dom` -- node classes and tree operations,
* :mod:`repro.htmlmodel.parser` -- an HTML tokenizer and tree builder,
* :mod:`repro.htmlmodel.selectors` -- a CSS-subset selector engine plus
  structural node paths,
* :mod:`repro.htmlmodel.serialize` -- DOM back to HTML text.

The model is intentionally small but honest: void elements, attributes,
comments, entity decoding, implied tag closing for the constructs our
templates emit, and a selector grammar rich enough to express robust price
anchors (``#price``, ``div.product-price > span.amount``, ``[itemprop=price]``).
"""

from repro.htmlmodel.dom import Document, Element, NodePath, Text
from repro.htmlmodel.parser import (
    HTMLParseError,
    parse_cache_stats,
    parse_html,
    parse_html_cached,
    reset_parse_cache,
)
from repro.htmlmodel.selectors import Selector, SelectorError, select, select_one
from repro.htmlmodel.serialize import to_html

__all__ = [
    "Document",
    "Element",
    "HTMLParseError",
    "NodePath",
    "Selector",
    "SelectorError",
    "Text",
    "parse_cache_stats",
    "parse_html",
    "parse_html_cached",
    "reset_parse_cache",
    "select",
    "select_one",
    "to_html",
]
