"""Persona/login experiment and tracker-census tests."""

from __future__ import annotations

import pytest

from repro.analysis.personal import (
    derive_anchor_for_domain,
    login_experiment,
    persona_experiment,
)
from repro.analysis.thirdparty import tracker_presence, trackers_on_page
from repro.core.store import PageStore
from repro.ecommerce.thirdparty import TRACKER_CENSUS


class TestPersonaExperiment:
    def test_null_result(self, fresh_world):
        """Affluent vs budget personas see identical prices (§4.4)."""
        comparisons = persona_experiment(
            fresh_world,
            domains=["www.digitalrev.com", "www.guess.eu", "www.kobobooks.com"],
            products_per_domain=3,
        )
        assert len(comparisons) == 9
        assert all(c.affluent_price is not None for c in comparisons)
        assert not [c for c in comparisons if c.differs]

    def test_null_result_with_ab_noise_retailer(self, fresh_world):
        """Repeated measurement suppresses hotels.com's A/B noise."""
        comparisons = persona_experiment(
            fresh_world, domains=["www.hotels.com"], products_per_domain=4
        )
        assert not [c for c in comparisons if c.differs]


class TestLoginExperiment:
    def test_fig10_shape(self, fresh_world):
        study = login_experiment(fresh_world, n_products=8)
        assert set(study.series) == {"W/o login", "User A", "User B", "User C"}
        assert all(len(v) == len(study.product_urls) for v in study.series.values())
        # Identity-keyed pricing: at least one product differs across identities.
        assert study.products_with_identity_differences() >= 1

    def test_prices_are_positive(self, fresh_world):
        study = login_experiment(fresh_world, n_products=5)
        for values in study.series.values():
            assert all(v is None or v > 0 for v in values)

    def test_rejects_loginless_domain(self, fresh_world):
        with pytest.raises(ValueError):
            login_experiment(fresh_world, domain="www.digitalrev.com")

    def test_mean_price_requires_data(self, fresh_world):
        study = login_experiment(fresh_world, n_products=5)
        assert study.mean_price("User A") > 0

    def test_anchor_helper(self, fresh_world):
        anchor = derive_anchor_for_domain(fresh_world, "www.amazon.com")
        assert anchor.selector or anchor.node_path


class TestTrackerScan:
    def test_trackers_on_page_finds_scripts(self):
        html = (
            "<html><head>"
            "<script src='http://www.google-analytics.com/embed.js'></script>"
            "</head><body>"
            "<div class='widget widget-x' data-src='assets.pinterest.com'></div>"
            "</body></html>"
        )
        hosts = trackers_on_page(html)
        assert "www.google-analytics.com" in hosts
        assert "assets.pinterest.com" in hosts

    def test_ignores_first_party_and_garbage(self):
        html = "<script src='/local.js'></script><script src='::bad::'></script>"
        assert trackers_on_page(html) == set()

    def test_census_over_store(self, tiny_world, tiny_backend):
        from repro.core.backend import CheckRequest

        domains = tiny_world.crawled_domains[:8]
        for domain in domains:
            anchor = derive_anchor_for_domain(tiny_world, domain)
            product = tiny_world.retailer(domain).catalog.products[0]
            tiny_backend.check(
                CheckRequest(url=f"http://{domain}{product.path}", anchor=anchor)
            )
        census = tracker_presence(tiny_backend.store, domains=domains)
        assert census.n_domains == len(domains)
        assert 0.0 <= min(census.presence.values())
        assert max(census.presence.values()) <= 1.0
        # Measured presence must agree with the shops' configuration.
        for domain in domains:
            configured = {t.name for t in tiny_world.retailer(domain).trackers}
            assert set(census.per_domain[domain]) == configured

    def test_census_empty_store(self):
        census = tracker_presence(PageStore())
        assert census.n_domains == 0
        assert all(v == 0.0 for v in census.presence.values())
