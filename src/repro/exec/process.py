"""Multi-process shard execution.

:class:`ProcessExecutor` fans a batch's shards out to a persistent pool
of worker processes.  A worker never receives live simulation objects --
no DOM trees, servers, or networks cross the process boundary.  Instead
it receives:

* the world's :class:`~repro.ecommerce.world.WorldSpec` (a few config
  primitives) from which it regrows an equivalent world once per process
  and caches it,
* the shard's :class:`~repro.core.backend.ScheduledCheck` slice (URLs,
  anchors, pre-assigned check ids and start times), and
* the shard's *session state*: each vantage point's cookies for the
  shard's domains and each owned retailer server's
  :meth:`~repro.ecommerce.retailer.RetailerServer.session_state` dict
  (request counter; stateful scenario servers add their own fields).

Because every stochastic draw in the simulation is keyed by request
identity rather than arrival order (see ``docs/ARCHITECTURE.md``), the
rebuilt world plus the restored session state reproduce each check
bit-for-bit.  The worker sends back reports, buffered archive calls, and
the post-batch session state; the coordinator folds the state into its
own world and replays archives in plan order, so the next day's batch
starts from exactly the history a sequential run would have written.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.ecommerce.world import WorldSpec
from repro.exec.local import merge_in_plan_order
from repro.exec.plan import ExecError, ShardPlan
from repro.net.urls import URL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck, SheriffBackend
    from repro.core.reports import PriceCheckReport
    from repro.ecommerce.world import World
    from repro.net.vantage import VantagePoint

__all__ = ["ProcessExecutor"]

#: Per-process memo of rebuilt worlds: spec -> (world, backend).  A pool
#: worker serves many shard tasks over a crawl's lifetime; the expensive
#: regrow from the spec happens once per (process, spec).
_WORKER_WORLDS: dict[WorldSpec, tuple] = {}


def _worker_world(spec: WorldSpec):
    from repro.core.backend import SheriffBackend

    cached = _WORKER_WORLDS.get(spec)
    if cached is None:
        world = spec.build()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        cached = (world, backend)
        _WORKER_WORLDS[spec] = cached
    return cached


def _install_session_state(
    fleet, servers, domains, jar_snapshots, server_states
) -> None:
    """Install a shard's session state: the one definition of "state".

    Used identically on both sides of the process boundary -- the worker
    restores the coordinator's pre-batch state, the coordinator folds the
    worker's post-batch state back in.  Per-retailer state travels as the
    server's own :meth:`~repro.ecommerce.retailer.RetailerServer.
    session_state` dict, so a stateful server subclass (the scenario
    layer's cloaking server tracks per-IP request rates) extends the SPI
    once and both sides of the boundary pick it up -- anything stateful
    that bypasses the SPI silently diverges between worker and
    coordinator.
    """
    for vantage, snapshot in zip(fleet, jar_snapshots):
        for domain in domains:
            vantage.jar.clear(domain)
        vantage.jar.restore(snapshot)
    for domain, state in server_states.items():
        server = servers.get(domain)
        if server is not None:
            server.restore_session_state(state)


def _run_shard(payload: dict) -> tuple[list, list, dict]:
    """Execute one shard in a worker process (module-level: picklable).

    Returns ``(results, jar_snapshots, server_states)`` where results are
    ``(index, report, archive_calls)`` triples and the snapshots/states
    are the shard's post-batch session state.
    """
    spec: WorldSpec = payload["spec"]
    tasks: list = payload["tasks"]
    domains: set[str] = set(payload["domains"])
    world, backend = _worker_world(spec)
    fleet = world.vantage_points
    # Mirror the coordinator's burst-memo configuration.  Each worker
    # grows its own cache (warmth affects speed, never bytes -- a hit is
    # byte-identical to the live fan-out by construction), so only the
    # knobs cross the process boundary, never entries.
    memo = payload.get("burst_memo", {})
    cache = backend.burst_cache
    cache.enabled = memo.get("enabled", True)
    cache.validate_fraction = memo.get("validate_fraction", 0.0)
    cache.max_entries_per_domain = memo.get("max_entries_per_domain", 1024)

    # Restore the shard's session state; wipe whatever a previous task
    # left for these domains (tasks from other shards never touch them).
    _install_session_state(
        fleet, world.servers, domains,
        payload["jar_snapshots"], payload["server_states"],
    )

    results = []
    for sched in tasks:
        archives: list[dict] = []
        report = backend.run_scheduled_check(
            sched, fleet, lambda **kwargs: archives.append(kwargs)
        )
        results.append((sched.index, report, archives))

    jar_snapshots = [vantage.jar.snapshot(hosts=domains) for vantage in fleet]
    server_states = {
        domain: world.servers[domain].session_state()
        for domain in payload["server_states"]
    }
    return results, jar_snapshots, server_states


class ProcessExecutor:
    """Execute shards in parallel worker processes, merge deterministically.

    The executor holds a persistent process pool; create it once per
    crawl/campaign (``ExecConfig.create`` does) and :meth:`close` it when
    done -- it is also a context manager.  Requires a world built by
    :func:`~repro.ecommerce.world.build_world` (workers regrow it from the
    spec) and the world's own vantage fleet.
    """

    def __init__(
        self,
        world: "World",
        workers: int = 4,
        *,
        plan: Optional[ShardPlan] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self._world = world
        self._spec = world.spec()
        self.plan = plan or ShardPlan(workers)
        # fork is the fast path (no re-import) but is only safe where it
        # is the platform default; macOS deliberately switched to spawn
        # (fork-without-exec crashes), so prefer it only on Linux.
        method = start_method or (
            "fork" if sys.platform == "linux" else "spawn"
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.plan.workers,
            mp_context=multiprocessing.get_context(method),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
        fleet: Sequence["VantagePoint"],
        sink: Optional[Callable[["PriceCheckReport"], None]] = None,
    ) -> list["PriceCheckReport"]:
        """Dispatch shards to the pool and merge results in plan order."""
        expected = [vp.name for vp in self._world.vantage_points]
        if [vp.name for vp in fleet] != expected:
            raise ExecError(
                "ProcessExecutor can only fan out over the world's own "
                "vantage fleet (workers rebuild that fleet from the spec)"
            )
        submitted = []
        for shard in self.plan.partition(scheduled):
            if not shard:
                continue
            domains = sorted(
                {URL.parse(sched.request.url).host for sched in shard}
            )
            payload = {
                "spec": self._spec,
                "tasks": shard,
                "domains": domains,
                "burst_memo": {
                    "enabled": backend.burst_cache.enabled,
                    "validate_fraction": backend.burst_cache.validate_fraction,
                    "max_entries_per_domain":
                        backend.burst_cache.max_entries_per_domain,
                },
                "jar_snapshots": [
                    vantage.jar.snapshot(hosts=set(domains))
                    for vantage in fleet
                ],
                "server_states": {
                    domain: self._world.servers[domain].session_state()
                    for domain in domains
                    if domain in self._world.servers
                },
            }
            submitted.append((domains, self._pool.submit(_run_shard, payload)))

        merged: dict[int, tuple["PriceCheckReport", list[dict]]] = {}
        for domains, future in submitted:
            results, jar_snapshots, server_states = future.result()
            for index, report, archives in results:
                merged[index] = (report, archives)
            # Fold the shard's post-batch session state back in, so the
            # coordinator's world is as-if it had run the shard itself.
            _install_session_state(
                fleet, self._world.servers, domains,
                jar_snapshots, server_states,
            )
        return merge_in_plan_order(backend, scheduled, merged, sink)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: release the pool."""
        self.close()

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.plan.workers})"
