"""Benchmark fixtures.

The figure benchmarks measure the *analysis* stage against a pre-built
dataset (the dataset build itself is measured once in the pipeline
benches).  ``REPRO_SCALE`` selects the workload; benchmarks default to
``tiny`` so `pytest benchmarks/ --benchmark-only` completes in minutes.
Run with ``REPRO_SCALE=paper`` to regenerate figures at the paper's scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.context import ExperimentContext


def _bench_scale() -> str:
    return os.environ.get("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Shared experiment context with crowd + crawl datasets materialized."""
    context = ExperimentContext(_bench_scale(), seed=2013)
    # Materialize both datasets up front so benches measure analysis only.
    _ = context.crowd
    _ = context.crawl
    _ = context.crawl_clean
    _ = context.crowd_clean
    return context
