"""Pipeline-stage benchmarks: world build, $heriff checks, crawl
throughput, campaign throughput.

These quantify the cost of the *measurement* machinery (as opposed to the
analysis, covered by the figure benches).
"""

from __future__ import annotations

import pytest

from repro.analysis.personal import derive_anchor_for_domain
from repro.core.backend import CheckRequest, SheriffBackend
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, build_world


def test_bench_world_build(benchmark):
    """Construct the full named-retailer world plus a 60-shop long tail."""
    world = benchmark.pedantic(
        lambda: build_world(WorldConfig(catalog_scale=0.25, long_tail_domains=60)),
        rounds=3, iterations=1,
    )
    assert len(world.retailers) >= 60


@pytest.fixture(scope="module")
def check_setup():
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    domain = "www.digitalrev.com"
    anchor = derive_anchor_for_domain(world, domain)
    product = world.retailer(domain).catalog.products[0]
    url = f"http://{domain}{product.path}"
    return backend, CheckRequest(url=url, anchor=anchor)


def test_bench_sheriff_check(benchmark, check_setup):
    """One synchronized 14-vantage-point price check, end to end."""
    backend, request = check_setup
    report = benchmark(backend.check, request)
    assert len(report.valid_observations()) == 14


def test_bench_crawl_product_day(benchmark):
    """A one-day crawl slice: 3 retailers x 5 products x 14 points."""
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    plan = build_plan(world, domains=world.crawled_domains[:3],
                      products_per_retailer=5)
    day = iter(range(300, 10_000))

    def crawl_once():
        return run_crawl(world, backend, plan,
                         CrawlConfig(days=1, start_day=next(day)))

    dataset = benchmark.pedantic(crawl_once, rounds=3, iterations=1)
    assert dataset.n_extracted_prices == 3 * 5 * 14


def test_bench_crowd_checks(benchmark):
    """25 crowd-triggered checks through the extension + backend."""
    def run_once():
        world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=10))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        return run_campaign(
            world, backend,
            CampaignConfig(n_checks=25, population_size=20, seed=11),
        )

    dataset = benchmark.pedantic(run_once, rounds=2, iterations=1)
    assert dataset.n_requests == 25
