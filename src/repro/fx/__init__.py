"""Foreign-exchange substrate.

Retailers display prices in the visitor's local currency, so a naive
comparison across vantage points would "discover" discrimination that is
really just currency translation.  The paper's counter-measure (§2.2):

    "We convert the prices obtained by the different vantage points for the
    same product into US dollars using the daily lowest and highest exchange
    rates.  We keep only products whose price variation is strictly greater
    than the maximum gap that can exist given the two extreme exchange rates
    in our dataset."

This package provides the pieces: a currency registry, a deterministic
daily rate series with intraday low/high around 2013 levels, conversion
utilities, and the conservative max-gap guard used by the cleaning stage.
"""

from repro.fx.currencies import CURRENCIES, Currency, currency_for_country
from repro.fx.rates import DailyRate, RateService
from repro.fx.convert import Converter, ConversionError, max_gap_ratio

__all__ = [
    "CURRENCIES",
    "ConversionError",
    "Converter",
    "Currency",
    "DailyRate",
    "RateService",
    "currency_for_country",
    "max_gap_ratio",
]
