"""$heriff as a service: a long-lived, stdlib-only HTTP serving layer.

The paper's system is *on-demand* -- users submit a URL and get a
price-discrimination verdict back -- so this package turns the batch
machinery into a service: single checks against a long-lived serving
context whose :class:`~repro.core.burstcache.BurstCache` acts as the
serving cache, and campaign *jobs* that run on background threads under
the checkpoint layer so a killed or restarted service resumes them and
still produces byte-identical results.

Hexagonal layout (ports inward, adapters outward):

* :mod:`repro.serve.service` -- :class:`SheriffService`, the
  transport-free core (checks, job registry, health);
* :mod:`repro.serve.jobs` -- durable job specs + restart-safe registry;
* :mod:`repro.serve.app` -- the HTTP adapter
  (:class:`~repro.serve.app.SheriffHTTPServer`, thin routes);
* :mod:`repro.serve.wire` -- composition root (:func:`build_app`) and
  the CLI entry (:func:`serve`).

See docs/API.md for the endpoint table and docs/ARCHITECTURE.md for the
serving-layer design notes.
"""

from repro.serve.jobs import Job, JobRegistry, JobSpec
from repro.serve.service import (
    BadRequest,
    Conflict,
    NotFound,
    ServiceError,
    SheriffService,
    encode_report,
)
from repro.serve.wire import ServeConfig, build_app, serve

__all__ = [
    "BadRequest",
    "Conflict",
    "Job",
    "JobRegistry",
    "JobSpec",
    "NotFound",
    "ServeConfig",
    "ServiceError",
    "SheriffService",
    "build_app",
    "encode_report",
    "serve",
]
