"""Command-line interface.

Subcommands mirror the paper's workflow:

* ``campaign`` -- run the crowdsourced beta campaign, optionally saving the
  dataset as JSON-lines,
* ``crawl``    -- run the systematic crawl of the 21 retailers, optionally
  saving the dataset,
* ``analyze``  -- re-analyze a saved crawl dataset (figures 3/4/7/9 style
  summaries) without re-measuring,
* ``check``    -- one ad-hoc $heriff check against a simulated shop,
* ``report``   -- run every figure experiment and print the
  paper-vs-measured report (same output as
  ``python -m repro.experiments.runner``),
* ``serve``    -- run the long-lived $heriff HTTP service (on-demand
  checks, campaign jobs, progress/results/health endpoints; see
  ``repro.serve``).

Examples::

    python -m repro.cli campaign --scale quick --out crowd.jsonl
    python -m repro.cli crawl --scale tiny --out crawl.jsonl
    python -m repro.cli crawl --scale quick --workers 4 --exec-mode process
    python -m repro.cli analyze crawl.jsonl
    python -m repro.cli check www.digitalrev.com --product 2
    python -m repro.cli report --scale quick
    python -m repro.cli serve --port 8350 --data-dir sheriff-data
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import io as dataset_io
from repro.analysis import (
    clean_reports,
    domain_ratio_stats,
    finland_profile,
    location_ratio_stats,
    variation_extent,
)
from repro.exec import ExecConfig, reset_fleet_health
from repro.exec.plan import PLANNERS
from repro.experiments.context import SCALES, ExperimentContext
from repro.fx.rates import RateService

__all__ = ["CliError", "main", "build_parser"]


class CliError(Exception):
    """A user-facing CLI failure: one line on stderr, exit code 2.

    Raised by subcommands for bad invocations and unreadable inputs;
    :func:`main` catches it, so callers (and tests) always see a clean
    one-line message and an ``int`` return instead of a traceback.
    """

    def __init__(self, message: str, *, code: int = 2) -> None:
        super().__init__(message)
        self.code = code


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crowd-assisted search for price discrimination (CoNEXT'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", choices=sorted(SCALES), default="tiny",
                       help="workload scale (default: tiny)")
        p.add_argument("--seed", type=int, default=2013)

    def add_exec(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="shard fan-out batches across N workers; 0 = "
                            "auto-size from the CPU count (output is "
                            "byte-identical at any N; default 1)")
        p.add_argument("--exec-mode", choices=("local", "process", "auto"),
                       default="local",
                       help="how shards execute: in this process, in "
                            "dedicated worker processes, or decided from "
                            "the world's predicted live-work share "
                            "(default: local)")
        p.add_argument("--planner", choices=PLANNERS, default="cost",
                       help="shard planner: cost-aware bin packing or the "
                            "stable-hash fallback (bytes are identical "
                            "under either; default: cost)")
        p.add_argument("--max-worker-restarts", type=int, default=3,
                       metavar="N",
                       help="under --exec-mode process: how many times a "
                            "shard's dead or hung worker is respawned "
                            "before the shard is quarantined to inline "
                            "execution (bytes are identical either way; "
                            "default 3)")

    def add_checkpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument("--checkpoint-dir", metavar="DIR",
                       help="spill each completed day to DIR so a killed "
                            "run can resume (see --resume)")
        p.add_argument("--resume", action="store_true",
                       help="continue a run checkpointed in "
                            "--checkpoint-dir, skipping committed days")

    p_campaign = sub.add_parser("campaign", help="run the crowd campaign")
    add_scale(p_campaign)
    add_exec(p_campaign)
    add_checkpoint(p_campaign)
    p_campaign.add_argument("--out", help="write the dataset to this JSONL file")

    p_crawl = sub.add_parser("crawl", help="run the systematic crawl")
    add_scale(p_crawl)
    add_exec(p_crawl)
    add_checkpoint(p_crawl)
    p_crawl.add_argument("--out", help="write the dataset to this JSONL file")
    p_crawl.add_argument(
        "--scenario", metavar="NAME",
        help="crawl an adversarial scenario world instead of the paper "
             "world, and score detection against its ground truth "
             "(names: python -m repro.scenarios --help)",
    )

    p_analyze = sub.add_parser(
        "analyze", help="analyze a saved dataset (crawl or crowd, auto-detected)"
    )
    p_analyze.add_argument("dataset",
                           help="JSONL file from 'crawl --out' or 'campaign --out'")
    p_analyze.add_argument("--seed", type=int, default=2013,
                           help="seed of the run that produced the dataset "
                                "(needed to reconstruct FX rates)")

    p_check = sub.add_parser("check", help="one ad-hoc $heriff price check")
    add_scale(p_check)
    p_check.add_argument("domain", help="simulated shop domain, e.g. www.digitalrev.com")
    p_check.add_argument("--product", type=int, default=0,
                         help="catalog index of the product to check")

    p_report = sub.add_parser("report", help="run all figure experiments")
    add_scale(p_report)
    add_exec(p_report)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived $heriff HTTP service"
    )
    add_scale(p_serve)
    add_exec(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8350,
                         help="TCP port to listen on; 0 picks a free "
                              "port and prints it (default: 8350)")
    p_serve.add_argument("--data-dir", metavar="DIR",
                         help="persist campaign jobs (spec, checkpoint, "
                              "results) under DIR so a restarted service "
                              "resumes them; default: a fresh temporary "
                              "directory (jobs die with the process)")
    return parser


def _exec_config(args: argparse.Namespace) -> Optional[ExecConfig]:
    """The ExecConfig the flags describe (None = sequential baseline)."""
    workers = getattr(args, "workers", 1)
    mode = getattr(args, "exec_mode", "local")
    planner = getattr(args, "planner", "cost")
    if workers == 1 and mode == "local":
        return None
    return ExecConfig(
        workers=workers, mode=mode, planner=planner,
        max_worker_restarts=getattr(args, "max_worker_restarts", 3),
    )


def _print_fleet_health() -> None:
    """One exec-summary line when supervision had to step in.

    ``run_campaign``/``run_crawl`` close their executors internally, so
    the numbers come from the process-wide accumulator every closing
    :class:`~repro.exec.process.ProcessExecutor` folds into (zeroed at
    command start).  Quiet runs print nothing.
    """
    from repro.exec.process import fleet_health

    health = fleet_health()
    if not (health["restarts"] or health["quarantined_shards"]):
        return
    print(
        f"  exec: {health['restarts']} worker restart(s) "
        f"({health['hang_kills']} hang kill(s)), "
        f"{health['quarantined_shards']} quarantined shard(s) / "
        f"{health['inline_checks']} check(s) inline, "
        f"{health['recovery_ms']:.0f} ms in recovery"
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _checkpoint_args(args: argparse.Namespace) -> dict:
    """The checkpoint kwargs the flags describe (validated)."""
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = getattr(args, "resume", False)
    if resume and checkpoint_dir is None:
        raise CliError("--resume requires --checkpoint-dir")
    return {"checkpoint_dir": checkpoint_dir, "resume": resume}


def _cmd_campaign(args: argparse.Namespace) -> int:
    reset_fleet_health()
    ctx = ExperimentContext(args.scale, seed=args.seed,
                            exec_config=_exec_config(args),
                            **_checkpoint_args(args))
    dataset = ctx.crowd
    summary = dataset.summary()
    print(
        f"campaign complete: {summary['requests']} checks / "
        f"{summary['users']} users / {summary['countries']} countries / "
        f"{summary['domains']} domains"
    )
    _print_fleet_health()
    for domain, count in dataset.variation_counts().most_common(10):
        print(f"  flagged {domain:40s} {count}")
    if args.out:
        lines = dataset_io.save_crowd_dataset(dataset, args.out, seed=args.seed)
        print(f"wrote {lines} records to {args.out}")
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    if args.scenario:
        if getattr(args, "checkpoint_dir", None):
            raise CliError(
                "--checkpoint-dir does not apply to scenario crawls"
            )
        return _cmd_crawl_scenario(args)
    reset_fleet_health()
    ctx = ExperimentContext(args.scale, seed=args.seed,
                            exec_config=_exec_config(args),
                            **_checkpoint_args(args))
    dataset = ctx.crawl
    print(f"crawl complete: {dataset.summary()}")
    _print_fleet_health()
    if args.out:
        lines = dataset_io.save_crawl_dataset(dataset, args.out, seed=args.seed)
        print(f"wrote {lines} reports to {args.out}")
    return 0


def _cmd_crawl_scenario(args: argparse.Namespace) -> int:
    """Campaign + crawl one adversarial scenario world, score detection."""
    from repro.scenarios import get_scenario
    from repro.scenarios.harness import GridCell, check_invariants, run_cell

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.scale != "tiny":
        print(
            f"note: --scale {args.scale} is ignored with --scenario "
            "(scenario worlds carry their own fixed size)",
            file=sys.stderr,
        )
    reset_fleet_health()
    cell = GridCell(
        mode=args.exec_mode, workers=args.workers, planner=args.planner
    )
    result = run_cell(scenario, cell, seed=args.seed, keep_dataset=True)
    print(
        f"scenario {scenario.name} [{cell.label}]: "
        f"{result.n_reports} crawl reports over "
        f"{len(scenario.crawl_domains)} domains"
    )
    for line in result.score.summary_lines():
        print(f"  {line}")
    # Fleet-wide memo telemetry: under --exec-mode process the workers
    # drain their cache counters back through the shard results and the
    # coordinator absorbs them, so these numbers cover every worker.
    stats = result.memo_stats
    print(
        f"  memo: {stats['hits']} hits / {stats['misses']} misses; "
        f"live-only: {sorted(result.live_only) or 'none'}"
    )
    _print_fleet_health()
    problems = check_invariants(scenario, [result])
    for line in problems:
        print(f"  INVARIANT VIOLATED: {line}")
    if args.out:
        assert result.crawl_dataset is not None
        lines = dataset_io.save_crawl_dataset(
            result.crawl_dataset, args.out, seed=args.seed
        )
        print(f"wrote {lines} reports to {args.out}")
    return 1 if problems else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    # Both dataset kinds come out of this CLI's own --out; sniff the
    # header instead of making the user remember which file was which.
    try:
        kind, dataset = dataset_io.load_dataset(args.dataset)
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        raise CliError(f"cannot read dataset {args.dataset!r}: {reason}")
    except dataset_io.DatasetFormatError as exc:
        raise CliError(f"not a repro dataset {args.dataset!r}: {exc}")
    except UnicodeDecodeError:
        raise CliError(f"not a repro dataset {args.dataset!r}: binary junk")
    if kind == "crowd":
        return _analyze_crowd(dataset, seed=args.seed)
    return _analyze_crawl(dataset, seed=args.seed)


def _analyze_crowd(dataset, *, seed: int) -> int:
    rates = RateService(seed=seed)
    summary = dataset.summary()
    clean = clean_reports(dataset.reports(), rates)
    print(
        f"loaded crowd dataset: {summary['requests']} checks / "
        f"{summary['users']} users / {summary['countries']} countries / "
        f"{summary['domains']} domains; guard x{clean.guard:.4f}"
    )
    print("\nchecks with variation per domain (Fig. 1):")
    for domain, count in dataset.variation_counts().most_common(15):
        print(f"  {domain:38s} {count}")
    print("\nmagnitude (Fig. 2, median max/min ratio of flagged checks):")
    stats = domain_ratio_stats(clean.kept, only_variation=True)
    for domain in sorted(stats, key=lambda d: stats[d].median):
        print(f"  {domain:38s} x{stats[domain].median:.3f}")
    return 0


def _analyze_crawl(dataset, *, seed: int) -> int:
    rates = RateService(seed=seed)
    clean = clean_reports(dataset.reports, rates)
    print(
        f"loaded {len(dataset)} reports ({dataset.n_extracted_prices:,} prices); "
        f"guard x{clean.guard:.4f}; kept {clean.n_kept}"
    )
    print("\nextent of variation (Fig. 3):")
    extent = variation_extent(clean.kept)
    for domain in sorted(extent, key=extent.get, reverse=True):
        print(f"  {domain:38s} {extent[domain]:.0%}")
    print("\nmagnitude (Fig. 4, median max/min ratio of flagged checks):")
    stats = domain_ratio_stats(clean.kept, only_variation=True)
    for domain in sorted(stats, key=lambda d: stats[d].median):
        print(f"  {domain:38s} x{stats[domain].median:.3f}")
    print("\nper-location premium (Fig. 7, box plots of ratio-to-cheapest):")
    from repro.textplot import boxplot_rows

    locations = location_ratio_stats(clean.kept)
    print(boxplot_rows(locations, width=44))
    print("\nFinland profile (Fig. 9):")
    varied = [r for r in clean.kept if r.has_variation]
    for domain, s in sorted(finland_profile(varied).items(),
                            key=lambda kv: kv[1].median):
        print(f"  {domain:38s} x{s.median:.3f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.personal import derive_anchor_for_domain
    from repro.core.backend import CheckRequest

    ctx = ExperimentContext(args.scale, seed=args.seed)
    world = ctx.world
    if args.domain not in world.retailers:
        print(f"unknown domain {args.domain!r}; try one of:", file=sys.stderr)
        for domain in world.crawled_domains:
            print(f"  {domain}", file=sys.stderr)
        return 2
    catalog = world.retailer(args.domain).catalog
    if not 0 <= args.product < len(catalog):
        print(f"product index out of range (0..{len(catalog) - 1})", file=sys.stderr)
        return 2
    product = catalog.products[args.product]
    anchor = derive_anchor_for_domain(world, args.domain)
    report = ctx.backend.check(CheckRequest(
        url=f"http://{args.domain}{product.path}", anchor=anchor,
    ))
    print(report.summary_line())
    for obs in report.observations:
        if obs.ok:
            print(f"  {obs.vantage:24s} {obs.raw_text:>16s} -> ${obs.usd:9.2f}")
        else:
            print(f"  {obs.vantage:24s} FAILED ({obs.error})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    reset_fleet_health()
    ctx = ExperimentContext(args.scale, seed=args.seed,
                            exec_config=_exec_config(args))
    results = runner.run_all(ctx)
    print(runner.render_report(results, scale=args.scale))
    _print_fleet_health()
    return 0 if all(r.all_checks_pass for r in results) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve

    return serve(
        host=args.host, port=args.port, scale=args.scale, seed=args.seed,
        data_dir=args.data_dir, exec_config=_exec_config(args),
    )


_COMMANDS = {
    "campaign": _cmd_campaign,
    "crawl": _cmd_crawl,
    "analyze": _cmd_analyze,
    "check": _cmd_check,
    "report": _cmd_report,
    "serve": _cmd_serve,
}


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CliError as exc:
        print(exc, file=sys.stderr)
        return exc.code


if __name__ == "__main__":
    raise SystemExit(main())
