"""RunCheckpoint: day-segment spill, verify, and resume for one run.

One :class:`RunCheckpoint` owns one checkpoint directory::

    manifest.jsonl      the fsync'd commit log (header + one line/segment)
    seg-00000.jsonl     day-segment 0, columnar dataset layout (repro.io)
    state-00000.json    run state captured *after* segment 0
    ...

Commit protocol, per completed day-segment (each step durable before the
next starts):

1. the segment's dataset is written to ``seg-K.jsonl.tmp``, fsync'd, and
   renamed into place;
2. the post-segment run state (:mod:`repro.checkpoint.state`) is written
   the same way;
3. one manifest line recording both files' SHA-256 digests is appended
   and fsync'd -- the atomic commit point.

A kill before step 3 leaves orphan files the next resume overwrites; a
kill *during* step 3 leaves a torn manifest line the loader truncates;
after step 3 the segment is permanent.  Superseded state files (only the
latest is ever needed) are pruned after each commit.

Resume verifies the manifest fingerprint against the new run's world and
config, replays committed segments into the live dataset one at a time
through ``append_segment`` (peak memory: spine + one segment), and hands
the last state snapshot to :func:`repro.checkpoint.state.restore_run_state`.
Any missing or digest-mismatched file fails loudly with a named
:class:`~repro.checkpoint.manifest.CheckpointError` subclass.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.checkpoint.barriers import (
    SEGMENT_COMMITTED,
    SEGMENT_FLUSH,
    barrier,
)
from repro.checkpoint.manifest import (
    CheckpointError,
    Manifest,
    SegmentDigestError,
    SegmentMissingError,
    atomic_write_bytes,
    file_sha256,
    promote_tmp,
)
from repro.checkpoint.state import decode_state, encode_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawler.records import CrawlDataset
    from repro.crowd.dataset import CrowdDataset

__all__ = ["RunCheckpoint", "run_fingerprint"]

#: Run kinds a checkpoint directory can hold, and the repro.io dataset
#: kind each one's segments are saved as.
_KINDS = {"campaign": "crowd", "crawl": "crawl"}


def run_fingerprint(kind: str, world_config, run_config, **extra) -> dict:
    """The identity of a run: what must match for a resume to be valid.

    World and run configs are frozen dataclasses of primitives, so their
    ``asdict`` forms compare structurally.  Executor and memo settings
    are deliberately *excluded* -- both are byte-neutral (the
    determinism contract), so a run may resume under a different worker
    count or memo toggle.
    """
    fingerprint = {
        "kind": kind,
        "world": dataclasses.asdict(world_config),
        "run": dataclasses.asdict(run_config),
    }
    fingerprint.update(extra)
    return fingerprint


class RunCheckpoint:
    """Checkpoint directory handle for one campaign or crawl run."""

    def __init__(self, directory: Path, manifest: Manifest) -> None:
        if manifest.kind not in _KINDS:
            raise CheckpointError(
                f"unknown checkpoint kind {manifest.kind!r} "
                f"(expected one of {sorted(_KINDS)})"
            )
        self.directory = directory
        self.manifest = manifest

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        kind: str,
        fingerprint: dict,
        resume: bool = False,
    ) -> "RunCheckpoint":
        """Open (resuming) or start (fresh) a checkpoint directory.

        ``resume=True`` with no manifest present starts fresh -- callers
        need not distinguish first runs from restarts.  ``resume=False``
        with a manifest present refuses loudly: overwriting a checkpoint
        silently would destroy exactly the data checkpointing protects.
        """
        if kind not in _KINDS:
            raise CheckpointError(f"unknown checkpoint kind {kind!r}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / Manifest.FILENAME
        if path.exists():
            if not resume:
                raise CheckpointError(
                    f"{directory} already holds a checkpoint; pass "
                    f"resume=True to continue it (or point at a fresh "
                    f"directory)"
                )
            manifest = Manifest.load(path, repair=True)
            manifest.check_run(kind=kind, fingerprint=fingerprint)
        else:
            manifest = Manifest.create(
                path, kind=kind, fingerprint=fingerprint
            )
        return cls(directory, manifest)

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.manifest.kind

    @property
    def committed(self) -> list[dict]:
        """The committed segment records, in seq order."""
        return list(self.manifest.records)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def commit_segment(self, *, day: int, dataset, state: dict) -> dict:
        """Durably commit one completed day-segment (see module doc)."""
        from repro.io import save_crawl_dataset, save_crowd_dataset

        seq = len(self.manifest.records)
        seg_name = f"seg-{seq:05d}.jsonl"
        seg_path = self.directory / seg_name
        tmp = seg_path.with_name(seg_name + ".tmp")
        if self.kind == "campaign":
            save_crowd_dataset(dataset, tmp, columnar=True)
        else:
            save_crawl_dataset(dataset, tmp, columnar=True)
        barrier(SEGMENT_FLUSH)
        promote_tmp(tmp, seg_path)

        state_name = f"state-{seq:05d}.json"
        state_path = self.directory / state_name
        blob = json.dumps(
            encode_state(state), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        atomic_write_bytes(state_path, blob)

        record = {
            "seq": seq,
            "day": int(day),
            "file": seg_name,
            "sha256": file_sha256(seg_path),
            "rows": len(dataset),
            "state_file": state_name,
            "state_sha256": file_sha256(state_path),
        }
        self.manifest.append_segment(record)
        barrier(SEGMENT_COMMITTED)
        self._prune_stale_state()
        return record

    def _prune_stale_state(self) -> None:
        """Drop state files superseded by a newer commit (only the last
        segment's snapshot is ever read again)."""
        for record in self.manifest.records[:-1]:
            stale = self.directory / record["state_file"]
            try:
                stale.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Resume path
    # ------------------------------------------------------------------
    def _verified_path(self, filename: str, sha256: str) -> Path:
        path = self.directory / filename
        if not path.exists():
            raise SegmentMissingError(
                f"{path}: manifest-committed file is missing"
            )
        actual = file_sha256(path)
        if actual != sha256:
            raise SegmentDigestError(
                f"{path}: content digest {actual} != committed {sha256}"
            )
        return path

    def load_segment(
        self, record: dict
    ) -> "Union[CrawlDataset, CrowdDataset]":
        """Load one committed segment, verifying its digest first."""
        from repro.io import load_crawl_dataset, load_crowd_dataset

        path = self._verified_path(record["file"], record["sha256"])
        if self.kind == "campaign":
            return load_crowd_dataset(path)
        return load_crawl_dataset(path)

    def fold_into(self, dataset) -> int:
        """Replay every committed segment into ``dataset``, one at a time.

        Segments are loaded, folded through ``append_segment``, and
        released before the next loads -- peak memory stays at (spine +
        one segment) no matter how long the committed prefix is.
        Returns the number of segments folded.
        """
        for record in self.manifest.records:
            segment = self.load_segment(record)
            dataset.append_segment(segment)
        return len(self.manifest.records)

    def load_last_state(self) -> Optional[dict]:
        """The run state captured after the last committed segment."""
        if not self.manifest.records:
            return None
        record = self.manifest.records[-1]
        path = self._verified_path(
            record["state_file"], record["state_sha256"]
        )
        return decode_state(json.loads(path.read_text(encoding="utf-8")))
