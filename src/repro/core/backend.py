"""The $heriff backend: synchronized fan-out, extraction, archiving.

§3.1 steps (iii)-(vi): when a check arrives, the exact URI is requested
from the 14 vantage points "around the world" in a tight, synchronized
burst (reducing the chance that observed variation is temporal spread --
§2.2), each downloaded page is archived, the price is extracted at the
anchored location, parsed with the vantage point's locale as a hint,
converted to USD at the day's mid market rate, and the per-location prices
are returned to the user as a :class:`~repro.core.reports.PriceCheckReport`.

Transient network failures are retried a bounded number of times; a vantage
point that stays unreachable yields a failed observation rather than
aborting the check.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.extraction import extract_price
from repro.core.highlight import PriceAnchor
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.core.store import PageStore
from repro.ecommerce.localization import locale_for_country
from repro.fx.convert import Converter, max_gap_ratio
from repro.fx.rates import RateService
from repro.net.clock import SECONDS_PER_DAY
from repro.net.transport import Network, TransportError
from repro.net.urls import URL
from repro.net.vantage import VantagePoint

__all__ = ["CheckRequest", "SheriffBackend"]


@dataclass(frozen=True)
class CheckRequest:
    """What the extension sends to the backend."""

    url: str
    anchor: PriceAnchor
    origin: str = "anonymous"

    def __post_init__(self) -> None:
        URL.parse(self.url)  # validate eagerly; fail at submission time


class SheriffBackend:
    """Fan-out coordinator over a fixed vantage-point fleet."""

    MAX_RETRIES = 2

    def __init__(
        self,
        network: Network,
        vantage_points: Sequence[VantagePoint],
        rates: RateService,
        *,
        store: Optional[PageStore] = None,
    ) -> None:
        if not vantage_points:
            raise ValueError("backend needs at least one vantage point")
        self.network = network
        self.vantage_points = list(vantage_points)
        self.rates = rates
        self.converter = Converter(rates)
        self.store = store if store is not None else PageStore()
        self._check_counter = itertools.count(1)

    # ------------------------------------------------------------------
    def check(
        self,
        request: CheckRequest,
        *,
        vantage_points: Optional[Sequence[VantagePoint]] = None,
    ) -> PriceCheckReport:
        """Run one synchronized price check and return the report."""
        fleet = list(vantage_points) if vantage_points else self.vantage_points
        check_id = f"chk{next(self._check_counter):07d}"
        url = URL.parse(request.url)
        started = self.network.clock.now
        day_index = int(started // SECONDS_PER_DAY)

        observations: list[VantageObservation] = []
        currencies_seen: set[str] = set()
        for vantage in fleet:
            observations.append(
                self._observe(vantage, url, request.anchor, check_id, day_index,
                              currencies_seen)
            )

        guard = max_gap_ratio(self.rates, currencies_seen or {"USD"}, [day_index])
        return PriceCheckReport(
            check_id=check_id,
            url=str(url),
            domain=url.host,
            day_index=day_index,
            timestamp=started,
            observations=observations,
            guard_threshold=guard,
            origin=request.origin,
        )

    # ------------------------------------------------------------------
    def _observe(
        self,
        vantage: VantagePoint,
        url: URL,
        anchor: PriceAnchor,
        check_id: str,
        day_index: int,
        currencies_seen: set[str],
    ) -> VantageObservation:
        response = None
        error = ""
        for _ in range(self.MAX_RETRIES + 1):
            try:
                response = vantage.fetch(self.network, url)
                break
            except TransportError as exc:
                error = str(exc)
        location = vantage.location
        if response is None:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=f"network: {error}",
            )
        if not response.ok:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=f"http {int(response.status)}",
            )

        self.store.archive(
            check_id=check_id,
            url=str(url),
            domain=url.host,
            vantage=vantage.name,
            timestamp=self.network.clock.now,
            html=response.body,
        )

        locale = locale_for_country(location.country_code)
        extracted = extract_price(response.body, anchor, locale_hint=locale)
        if not extracted.ok or extracted.amount is None:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=extracted.error or "extraction failed",
            )
        # A symbol-less price string falls back to the locale the retailer
        # would have displayed for this vantage point.
        currency = extracted.currency or locale.currency.code
        currencies_seen.add(currency)
        usd = self.converter.to_usd(extracted.amount, currency, day_index)
        return VantageObservation(
            vantage=vantage.name,
            country_code=location.country_code,
            city=location.city,
            ok=True,
            raw_text=extracted.raw_text,
            amount=extracted.amount,
            currency=currency,
            usd=usd,
            method=extracted.method,
        )
