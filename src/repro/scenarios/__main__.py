"""``python -m repro.scenarios``: the scenario-matrix harness CLI."""

from repro.scenarios.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
