"""World builder: the simulated 2013 e-commerce web.

One :class:`World` contains everything an experiment needs: virtual clock,
network, geo-IP plan/database, FX rates, the 14 standard vantage points,
persona training sites, and the retailer population:

* the **30 named retailers** appearing in the paper's figures, each with a
  pricing policy calibrated so the *shape* of every figure reproduces
  (see the per-retailer table in DESIGN.md / this module's specs), and
* a **long tail** of honest uniform-priced shops so the crowdsourced
  dataset spans ~600 domains of which only a few dozen show variation --
  the discovery problem crowdsourcing is meant to solve.

Calibration sources, per retailer:

* membership in the crawled set and extent of variation -- Fig. 3,
* magnitude (max/min ratio) -- Figs. 2 and 4,
* multiplicative vs additive structure -- Fig. 6,
* per-location ordering (US/BR cheap, Finland dear; exceptions
  mauijim/tuscanyleather) -- Figs. 7 and 9,
* per-US-city structure for homedepot, per-country for amazon/killah --
  Fig. 8,
* identity-keyed Kindle ebooks on amazon -- Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.ecommerce.catalog import Catalog, generate_catalog
from repro.ecommerce.checkout import ShippingPolicy
from repro.ecommerce.personas import AFFLUENT, BUDGET, PersonaTrainingSite
from repro.ecommerce.pricing import (
    ABTestNoise,
    CategoryDispatch,
    CityMultiplicative,
    GeoAdditive,
    GeoMultiplicative,
    DampedGeoMultiplicative,
    GeoMultiplyAdd,
    IdentityKeyed,
    PricingPolicy,
    ReferrerDiscount,
    TemporalDrift,
    UniformPricing,
)
from repro.ecommerce.retailer import Retailer, RetailerServer
from repro.ecommerce.templates import template_for
from repro.ecommerce.thirdparty import trackers_for_retailer
from repro.fx.rates import RateService
from repro.net.clock import VirtualClock
from repro.net.geoip import COUNTRY_SEED, GeoIPDatabase, IPAddressPlan
from repro.net.transport import Network
from repro.net.vantage import VantagePoint, standard_vantage_points
from repro.util import stable_rng

__all__ = [
    "World",
    "WorldConfig",
    "WorldSpec",
    "RetailerSpec",
    "build_world",
    "NAMED_RETAILER_SPECS",
]


# ----------------------------------------------------------------------
# Geo multiplier table helpers
# ----------------------------------------------------------------------
_EURO_COUNTRIES = ("ES", "DE", "BE", "IT", "FR", "NL", "PT", "GR", "IE")


def geo_table(
    *, us: float = 1.0, br: float = 1.0, uk: float = 1.0, eu: float = 1.0,
    fi: Optional[float] = None, default: Optional[float] = None,
) -> dict[str, float]:
    """Build a country->multiplier table from regional shorthand.

    ``fi`` defaults to the euro level; ``default`` (unlisted countries)
    defaults to the euro level as well and is applied by the policy's
    ``default`` field, so it is returned under the pseudo-key ``"*"``.
    """
    table: dict[str, float] = {"US": us, "BR": br, "GB": uk}
    for code in _EURO_COUNTRIES:
        table[code] = eu
    table["FI"] = eu if fi is None else fi
    table["*"] = eu if default is None else default
    return table


def _split_default(table: Mapping[str, float]) -> tuple[dict[str, float], float]:
    clean = {k: v for k, v in table.items() if k != "*"}
    return clean, table.get("*", 1.0)


def mult_policy(
    table: Mapping[str, float],
    *,
    coverage: float = 1.0,
    seed: int = 0,
    damped: bool = False,
    knee: float = 1200.0,
    ceiling: float = 3000.0,
    floor_fraction: float = 0.5,
) -> PricingPolicy:
    """A (possibly damped) multiplicative geo policy from a shorthand table."""
    clean, default = _split_default(table)
    if damped:
        return DampedGeoMultiplicative(
            table=clean, default=default, knee=knee, ceiling=ceiling,
            floor_fraction=floor_fraction, coverage=coverage, seed=seed,
        )
    return GeoMultiplicative(table=clean, default=default, coverage=coverage, seed=seed)


# ----------------------------------------------------------------------
# Retailer specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetailerSpec:
    """Declarative description of one named retailer.

    ``crowd_weight`` controls how often crowd users check this shop
    (drives Fig. 1 ordering); ``crawled`` marks membership in the paper's
    21-retailer systematic crawl; ``policy_factory`` receives the world
    seed and returns the pricing policy.
    """

    domain: str
    name: str
    category: str
    policy_factory: Callable[[int], PricingPolicy]
    crowd_weight: float = 1.0
    crawled: bool = False
    catalog_size: int = 120
    path_style: str = "product"
    localizes_currency: bool = True
    home_country: str = "US"
    supports_login: bool = False
    extra_catalog: Optional[tuple[str, int, str]] = None  # (category, size, sku_prefix)
    #: None -> a deterministic default shipping table; set explicitly for
    #: retailers whose logistics matter to the experiments (free-shipping
    #: bookdepository, bundled-display zavvi, ...).
    shipping: Optional[ShippingPolicy] = None


def _amazon_policy(seed: int) -> PricingPolicy:
    """Flat across US cities; country-level spread up to Fig. 8(b)'s ~2.0
    on covered products; identity-keyed Kindle ebooks (Fig. 10)."""
    countries = mult_policy(
        geo_table(us=1.0, br=1.04, uk=1.15, eu=1.25, fi=1.35),
        coverage=0.55, seed=seed, damped=True, knee=900, ceiling=2500,
        floor_fraction=0.45,
    )
    kindle = IdentityKeyed(multipliers=(0.85, 0.95, 1.0, 1.1), seed=seed)
    return CategoryDispatch(routes={"ebooks": kindle}, default=countries)


def _homedepot_policy(seed: int) -> PricingPolicy:
    """Per-US-city tiers incl. a 'mixed' city (Fig. 8(a))."""
    return CityMultiplicative(
        table={
            "Albany": 1.02, "Boston": 1.02, "Los Angeles": 1.03,
            "Chicago": 1.00, "Lincoln": 1.04, "New York": 1.12,
        },
        default=1.02,
        noisy_cities=frozenset({"Lincoln"}),
        noise_amplitude=0.05,
        coverage=0.45,
        seed=seed,
    )


def _energie_policy(seed: int) -> PricingPolicy:
    """Fig. 6(b): multiplicative for Europe, additive for the USA."""
    return GeoMultiplyAdd(
        mult_table={**_z(geo_table(eu=1.0, fi=1.15, uk=1.08, br=1.06)), "US": 1.0},
        add_table={"US": 4.5},
        mult_default=1.0,
        add_default=0.0,
        coverage=1.0,
        seed=seed,
    )


def _z(table: Mapping[str, float]) -> dict[str, float]:
    return {k: v for k, v in table.items() if k != "*"}


def _hotels_policy(seed: int) -> PricingPolicy:
    inner = mult_policy(
        geo_table(us=1.0, br=1.03, uk=1.1, eu=1.13, fi=1.24),
        coverage=0.75, seed=seed,
    )
    return ABTestNoise(
        TemporalDrift(inner, amplitude=0.08, seed=seed),
        amplitude=0.05, fraction=0.12, seed=seed,
    )


def _rightstart_policy(seed: int) -> PricingPolicy:
    """Additive surcharges: up to x3 on the cheapest items (Fig. 5)."""
    return GeoAdditive(
        table={"US": 0.0, "GB": 8.0, "FI": 18.0,
               **{c: 12.0 for c in _EURO_COUNTRIES}, "BR": 14.0},
        default=12.0, coverage=0.15, seed=seed,
        per_product_scale=(0.3, 1.6),
    )


def _scitec_policy(seed: int) -> PricingPolicy:
    return GeoAdditive(
        table={"US": 0.8, "GB": 0.6, "FI": 2.5,
               **{c: 0.0 for c in _EURO_COUNTRIES}, "BR": 2.0},
        default=0.0, coverage=0.85, seed=seed,
    )


#: The named retailers of the paper's figures.  crowd_weight is scaled so
#: Fig. 1's descending counts reproduce; medians in comments refer to the
#: Fig. 4 magnitude calibration.
NAMED_RETAILER_SPECS: tuple[RetailerSpec, ...] = (
    RetailerSpec(
        "www.amazon.com", "Amazon", "department", _amazon_policy,
        crowd_weight=52.0, crawled=True, catalog_size=150,
        supports_login=True, extra_catalog=("ebooks", 44, "KND"),
        shipping=ShippingPolicy(domestic=4.0, international=16.0,
                                free_threshold=35.0),
    ),
    RetailerSpec(
        "www.hotels.com", "Hotels.com", "hotels", _hotels_policy,
        crowd_weight=38.0, crawled=True, catalog_size=130,
    ),
    RetailerSpec(
        "store.steampowered.com", "Steam Store", "games",
        lambda seed: mult_policy(
            geo_table(us=1.0, br=0.72, uk=1.16, eu=1.25, fi=1.25), seed=seed),
        crowd_weight=30.0, path_style="item-query",
    ),
    RetailerSpec(
        "www.misssixty.com", "Miss Sixty", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, us=1.02, uk=1.03, br=1.02, fi=1.18), seed=seed),
        crowd_weight=24.0, crawled=True, catalog_size=60, home_country="IT",
    ),
    RetailerSpec(
        "www.energie.it", "Energie", "clothing", _energie_policy,
        crowd_weight=21.0, crawled=True, catalog_size=60, home_country="IT", path_style="p-html",
    ),
    RetailerSpec(
        "www.sears.com", "Sears", "department",
        lambda seed: mult_policy(
            geo_table(us=1.0, eu=1.12, uk=1.08, fi=1.18, br=1.04),
            coverage=0.8, seed=seed),
        crowd_weight=18.0,
    ),
    RetailerSpec(
        "eu.abercrombie.com", "Abercrombie EU", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.04, us=1.1, fi=1.14, br=1.06), seed=seed),
        crowd_weight=16.0, home_country="DE",
    ),
    RetailerSpec(
        "www.tuscanyleather.it", "Tuscany Leather", "leather-goods",
        # Finland is (exceptionally) the cheap location here -- Fig. 9.
        lambda seed: mult_policy(
            geo_table(fi=1.0, eu=1.12, uk=1.2, us=1.3, br=1.45),
            seed=seed, damped=True, knee=1400, ceiling=3000, floor_fraction=0.5),
        crowd_weight=14.0, crawled=True, catalog_size=50, home_country="IT", path_style="deep",
    ),
    RetailerSpec(
        "www.guess.eu", "Guess EU", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.03, us=1.02, fi=1.2, br=1.02), seed=seed),
        crowd_weight=13.0, crawled=True, catalog_size=60, home_country="NL",
    ),
    RetailerSpec(
        "www.overstock.com", "Overstock", "department",
        lambda seed: mult_policy(
            geo_table(us=1.0, eu=1.12, uk=1.08, fi=1.18, br=1.04),
            coverage=0.7, seed=seed),
        crowd_weight=12.0,
    ),
    RetailerSpec(
        "www.booking.com", "Booking.com", "travel",
        lambda seed: TemporalDrift(
            mult_policy(geo_table(us=1.0, eu=1.1, uk=1.08, fi=1.18, br=1.02),
                        coverage=0.7, seed=seed),
            amplitude=0.1, seed=seed),
        crowd_weight=11.0,
    ),
    RetailerSpec(
        "www.net-a-porter.com", "Net-a-Porter", "luxury-fashion",
        lambda seed: mult_policy(
            geo_table(uk=1.0, eu=1.06, us=1.04, fi=1.1, br=1.03),
            seed=seed, damped=True, knee=1500, ceiling=4000, floor_fraction=0.6),
        crowd_weight=10.0, crawled=True, catalog_size=70, home_country="GB",
    ),
    RetailerSpec(
        "www.autotrader.com", "AutoTrader", "automobiles",
        lambda seed: mult_policy(
            geo_table(us=1.0, eu=1.25, uk=1.2, fi=1.3, br=1.04),
            coverage=0.35, seed=seed, damped=True, knee=2500, ceiling=7000,
            floor_fraction=0.45),
        crowd_weight=9.0, crawled=True, catalog_size=130,
    ),
    RetailerSpec(
        "shop.replay.it", "Replay", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, us=1.1, uk=1.06, fi=1.15, br=1.08), seed=seed),
        crowd_weight=8.0, home_country="IT",
    ),
    RetailerSpec(
        "www.mauijim.com", "Maui Jim", "sunglasses",
        # The other Finland-cheap exception of Fig. 9.
        lambda seed: mult_policy(
            geo_table(fi=1.0, eu=1.12, uk=1.16, us=1.28, br=1.15), seed=seed),
        crowd_weight=7.5, crawled=True, catalog_size=60,
    ),
    RetailerSpec(
        "store.refrigiwear.it", "RefrigiWear Store", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.05, us=1.04, fi=1.42, br=1.03), seed=seed),
        crowd_weight=7.0, crawled=True, catalog_size=50, home_country="IT", path_style="p-html",
    ),
    RetailerSpec(
        "store.murphynye.com", "Murphy & Nye", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.02, us=1.02, fi=1.13, br=1.02),
            coverage=0.97, seed=seed),
        crowd_weight=6.0, crawled=True, catalog_size=50, home_country="IT",
    ),
    RetailerSpec(
        "www.elnaturalista.com", "El Naturalista", "shoes",
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.02, us=1.01, fi=1.09, br=1.01),
            coverage=0.95, seed=seed),
        crowd_weight=5.5, crawled=True, catalog_size=60, home_country="ES",
    ),
    RetailerSpec(
        "www.jeansshop.com", "Jeans Shop", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, us=1.1, uk=1.06, fi=1.14, br=1.06), seed=seed),
        crowd_weight=5.0, home_country="IT",
    ),
    RetailerSpec(
        "www.kobobooks.com", "Kobo Books", "ebooks",
        lambda seed: mult_policy(
            geo_table(us=1.0, eu=1.13, uk=1.08, fi=1.16, br=1.05),
            coverage=0.65, seed=seed),
        crowd_weight=4.5, crawled=True, catalog_size=130,
    ),
    RetailerSpec(
        "www.luisaviaroma.com", "LuisaViaRoma", "luxury-fashion",
        # The widest spread of Fig. 4 (whiskers to ~2.0), damped so the
        # multi-$K gowns stay under x1.5 (Fig. 5).
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.25, us=1.4, fi=1.75, br=1.05),
            coverage=0.9, seed=seed, damped=True, knee=1200, ceiling=3500,
            floor_fraction=0.25),
        crowd_weight=4.0, crawled=True, catalog_size=70, home_country="IT",
    ),
    RetailerSpec(
        "store.killah.com", "Killah Store", "clothing",
        lambda seed: mult_policy(
            geo_table(eu=1.0, uk=1.04, us=1.03, fi=1.38, br=1.02), seed=seed),
        crowd_weight=3.5, crawled=True, catalog_size=50, home_country="IT",
    ),
    RetailerSpec(
        "www.digitalrev.com", "DigitalRev", "photography",
        # Fig. 6(a): purely multiplicative, undamped -- parallel lines from
        # $5 lens caps to $5K bodies.
        lambda seed: mult_policy(
            geo_table(us=1.0, br=1.05, uk=1.12, eu=1.2, fi=1.28), seed=seed),
        crowd_weight=3.0, crawled=True, catalog_size=130,
    ),
    RetailerSpec(
        "www.scitec-nutrition.es", "Scitec Nutrition", "sports-nutrition",
        _scitec_policy,
        crowd_weight=2.8, crawled=True, catalog_size=80, home_country="ES",
    ),
    RetailerSpec(
        "www.staples.com", "Staples", "office",
        # The HotNets'12 finding carried over: visitors arriving from a
        # price aggregator get a discount (invisible to the fan-out).
        lambda seed: ReferrerDiscount(
            mult_policy(geo_table(us=1.0, eu=1.1, uk=1.06, fi=1.12, br=1.03),
                        coverage=0.6, seed=seed),
            referer_substring="pricegrabber", discount=0.08),
        crowd_weight=2.6,
    ),
    RetailerSpec(
        "www.zavvi.com", "Zavvi", "department",
        # The attribution confound (§2.2): non-UK *displayed* prices bundle
        # the £-flat shipping fee; checkout totals are equal everywhere.
        # The crowd flags zavvi, the attribution analysis clears it.
        lambda seed: GeoAdditive(
            table={"GB": 0.0}, default=8.0, coverage=1.0, seed=seed),
        crowd_weight=2.4, home_country="GB",
        shipping=ShippingPolicy(
            domestic=8.0, international=8.0,
            bundled_display=frozenset(
                code for code, _, _ in COUNTRY_SEED if code != "GB"
            ),
        ),
    ),
    RetailerSpec(
        "www.bookdepository.co.uk", "Book Depository", "books",
        lambda seed: mult_policy(
            geo_table(uk=1.0, us=1.04, eu=1.1, fi=1.12, br=1.03), seed=seed),
        crowd_weight=2.2, crawled=True, catalog_size=130, home_country="GB",
        shipping=ShippingPolicy(domestic=0.0, international=0.0),
    ),
    # Crawl-only retailers (flagged by earlier studies, not by this crowd).
    RetailerSpec(
        "www.chainreactioncycles.com", "Chain Reaction Cycles", "cycling",
        lambda seed: mult_policy(
            geo_table(uk=1.0, eu=1.05, us=1.02, fi=1.06, br=1.02),
            coverage=0.92, seed=seed, damped=True, knee=1500, ceiling=4000,
            floor_fraction=0.6),
        crowd_weight=0.6, crawled=True, catalog_size=130, home_country="GB",
    ),
    RetailerSpec(
        "www.homedepot.com", "Home Depot", "home-improvement",
        _homedepot_policy,
        crowd_weight=0.6, crawled=True, catalog_size=130, localizes_currency=False,
    ),
    RetailerSpec(
        "www.rightstart.com", "Right Start", "baby", _rightstart_policy,
        crowd_weight=0.5, crawled=True, catalog_size=130,
    ),
)


# ----------------------------------------------------------------------
# World assembly
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world construction.

    ``catalog_scale`` shrinks every catalog proportionally -- tests build
    small worlds fast; the paper-scale run uses 1.0.  ``long_tail_domains``
    is sized so named + long tail ≈ 600 domains, the §3.2 count.

    ``scenario`` names a registered world mutation from
    :mod:`repro.scenarios`: after the base world is assembled,
    ``build_world`` applies the scenario's mutator (extra retailers,
    adversarial pricing/server behaviours, crowd weights).  Because the
    name travels inside the config -- and therefore inside
    :class:`WorldSpec` -- a worker process regrowing the world from its
    spec reproduces the mutated world bit-for-bit.
    ``include_named_retailers`` lets a scenario start from an empty
    retailer roster instead of the paper's 30 named shops.
    """

    seed: int = 2013
    catalog_scale: float = 1.0
    long_tail_domains: int = 570
    loss_rate: float = 0.0
    include_long_tail: bool = True
    include_named_retailers: bool = True
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.catalog_scale <= 1.0:
            raise ValueError("catalog_scale must be in (0, 1]")
        if self.long_tail_domains < 0:
            raise ValueError("long_tail_domains must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")


@dataclass(frozen=True)
class WorldSpec:
    """A picklable seed from which an equivalent :class:`World` regrows.

    Everything in a world is a deterministic function of its
    :class:`WorldConfig`, so shipping the config (a few primitives) to a
    worker process and calling :meth:`build` there reconstructs servers,
    catalogs, FX rates, geo-IP plan, and the vantage fleet bit-for-bit --
    no pickling of live DOM trees, server objects, or networks.  Mutable
    *session* state (cookie jars, server request counters) is not part of
    the spec; executors transfer it separately per shard.
    """

    config: WorldConfig

    def build(self) -> "World":
        """Reconstruct the world this spec describes."""
        return build_world(self.config)


@dataclass
class World:
    """A fully wired simulation instance."""

    config: WorldConfig
    clock: VirtualClock
    network: Network
    plan: IPAddressPlan
    geoip: GeoIPDatabase
    rates: RateService
    vantage_points: list[VantagePoint]
    retailers: dict[str, Retailer]
    servers: dict[str, RetailerServer]
    crawled_domains: list[str]
    long_tail: list[str] = field(default_factory=list)
    #: Crowd-check weights for retailers outside the named-spec table --
    #: scenario mutators fill this so campaigns exercise their shops.
    extra_crowd_weights: dict[str, float] = field(default_factory=dict)

    @property
    def all_shop_domains(self) -> list[str]:
        return list(self.retailers)

    def spec(self) -> WorldSpec:
        """The picklable seed that regrows an equivalent world."""
        return WorldSpec(config=self.config)

    def retailer(self, domain: str) -> Retailer:
        """The retailer registered at ``domain`` (KeyError if absent)."""
        return self.retailers[domain]

    def crowd_weights(self) -> dict[str, float]:
        """Domain -> relative probability of a crowd user checking it."""
        weights = {
            spec.domain: spec.crowd_weight for spec in NAMED_RETAILER_SPECS
            if spec.domain in self.retailers
        }
        for domain in self.long_tail:
            weights[domain] = 0.6
        weights.update(self.extra_crowd_weights)
        return weights

    def register_retailer(
        self, retailer: Retailer, *, server: Optional[RetailerServer] = None
    ) -> RetailerServer:
        """Wire a retailer (and optionally a custom server) into the world.

        The scenario layer's entry point: the server defaults to a plain
        :class:`RetailerServer` built against this world's geo-IP database
        and FX rates; adversarial scenarios pass subclasses (cloaking,
        stockouts, page corruption).  Re-registering a domain replaces it.
        """
        if server is None:
            server = RetailerServer(
                retailer, geoip=self.geoip, rates=self.rates,
                seed=self.config.seed,
            )
        self.retailers[retailer.domain] = retailer
        self.servers[retailer.domain] = server
        self.network.register(retailer.domain, server)
        return server


_LONG_TAIL_WORDS_A = (
    "north", "blue", "swift", "cedar", "bright", "iron", "green", "silver",
    "amber", "urban", "prime", "royal", "vivid", "metro", "alpine", "coral",
    "lunar", "rapid", "solid", "zen",
)
_LONG_TAIL_WORDS_B = (
    "market", "goods", "outlet", "boutique", "traders", "supply", "bazaar",
    "store", "emporium", "depot", "shop", "corner", "warehouse", "mart",
)
_LONG_TAIL_TLDS = (".com", ".com", ".com", ".co.uk", ".de", ".es", ".it", ".fr", ".net")
_LONG_TAIL_CATEGORIES = (
    "books", "clothing", "shoes", "electronics", "office", "department",
    "games", "baby", "general",
)


def _default_shipping(domain: str, seed: int) -> ShippingPolicy:
    """A plausible per-retailer shipping table, deterministic in the seed."""
    rng = stable_rng(seed, domain, "shipping")
    return ShippingPolicy(
        domestic=round(rng.uniform(3.0, 7.0), 2),
        international=round(rng.uniform(10.0, 24.0), 2),
        free_threshold=(
            round(rng.uniform(40.0, 120.0), 2) if rng.random() < 0.3 else None
        ),
    )


def _long_tail_domains(count: int, seed: int) -> list[str]:
    rng = stable_rng(seed, "long-tail-domains")
    names: list[str] = []
    seen = set()
    counter = 0
    while len(names) < count:
        a = rng.choice(_LONG_TAIL_WORDS_A)
        b = rng.choice(_LONG_TAIL_WORDS_B)
        tld = rng.choice(_LONG_TAIL_TLDS)
        counter += 1
        domain = f"www.{a}{b}{counter}{tld}"
        if domain in seen:
            continue
        seen.add(domain)
        names.append(domain)
    return names


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Assemble the simulated web described in the module docstring."""
    config = config or WorldConfig()
    seed = config.seed
    clock = VirtualClock()
    network = Network(clock, seed=seed, loss_rate=config.loss_rate)
    plan = IPAddressPlan()
    geoip = plan.database()
    rates = RateService(seed=seed)
    vantage_points = standard_vantage_points(plan)

    retailers: dict[str, Retailer] = {}
    servers: dict[str, RetailerServer] = {}
    crawled: list[str] = []

    def _register(retailer: Retailer) -> None:
        server = RetailerServer(retailer, geoip=geoip, rates=rates, seed=seed)
        retailers[retailer.domain] = retailer
        servers[retailer.domain] = server
        network.register(retailer.domain, server)

    named_specs = NAMED_RETAILER_SPECS if config.include_named_retailers else ()
    for spec in named_specs:
        size = max(8, int(round(spec.catalog_size * config.catalog_scale)))
        catalog = generate_catalog(
            spec.domain, spec.category, size, seed=seed, path_style=spec.path_style
        )
        if spec.extra_catalog is not None:
            extra_category, extra_size, prefix = spec.extra_catalog
            extra_size = max(6, int(round(extra_size * config.catalog_scale)))
            generate_catalog(
                spec.domain, extra_category, extra_size, seed=seed,
                path_style=spec.path_style, sku_prefix=prefix, into=catalog,
            )
        retailer = Retailer(
            domain=spec.domain,
            name=spec.name,
            category=spec.category,
            catalog=catalog,
            policy=spec.policy_factory(seed),
            template=template_for(spec.domain, seed=seed),
            trackers=trackers_for_retailer(spec.domain, seed=seed),
            localizes_currency=spec.localizes_currency,
            home_country=spec.home_country,
            supports_login=spec.supports_login,
            shipping=spec.shipping or _default_shipping(spec.domain, seed),
        )
        _register(retailer)
        if spec.crawled:
            crawled.append(spec.domain)

    long_tail: list[str] = []
    if config.include_long_tail:
        rng = stable_rng(seed, "long-tail-config")
        for domain in _long_tail_domains(config.long_tail_domains, seed):
            category = rng.choice(_LONG_TAIL_CATEGORIES)
            catalog = generate_catalog(
                domain, category, rng.randint(6, 14), seed=seed
            )
            retailer = Retailer(
                domain=domain,
                name=domain.split(".")[1].title(),
                category=category,
                catalog=catalog,
                policy=UniformPricing(),
                template=template_for(domain, seed=seed),
                trackers=trackers_for_retailer(domain, seed=seed),
                localizes_currency=rng.random() < 0.6,
                home_country=rng.choice(("US", "GB", "DE", "ES", "IT", "FR")),
            )
            _register(retailer)
            long_tail.append(domain)

    for persona in (AFFLUENT, BUDGET):
        for domain in persona.training_sites:
            network.register(
                domain, PersonaTrainingSite(domain, persona.interest_tag)
            )

    world = World(
        config=config,
        clock=clock,
        network=network,
        plan=plan,
        geoip=geoip,
        rates=rates,
        vantage_points=vantage_points,
        retailers=retailers,
        servers=servers,
        crawled_domains=crawled,
        long_tail=long_tail,
    )
    if config.scenario is not None:
        # Late import: the scenario registry depends on the ecommerce
        # layer, not the other way round.  Applying the mutation *inside*
        # build_world is what makes scenario worlds regrowable from a
        # WorldSpec in executor worker processes.
        from repro.scenarios import apply_scenario

        apply_scenario(config.scenario, world)
    return world
