"""Crowdsourced discovery: a scaled-down beta campaign (paper §3).

Simulates beta users browsing ~170 shops over the Jan-May 2013 window and
clicking the $heriff check button, then prints the Fig. 1 / Fig. 2 views:
which domains the crowd flags, and the size of their price variations.

Run:  python examples/crowd_campaign.py
"""

from __future__ import annotations

from repro.analysis import clean_reports, domain_ratio_stats
from repro.core import SheriffBackend
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce import WorldConfig, build_world


def main() -> None:
    world = build_world(WorldConfig(catalog_scale=0.3, long_tail_domains=140))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    config = CampaignConfig(n_checks=300, population_size=150)
    print(
        f"running campaign: {config.n_checks} checks, "
        f"{config.population_size} users, {len(world.retailers)} shops ..."
    )
    dataset = run_campaign(world, backend, config)

    summary = dataset.summary()
    print(
        f"\ncollected {summary['requests']} requests from "
        f"{summary['users']} users in {summary['countries']} countries "
        f"across {summary['domains']} domains"
    )

    print("\nFig. 1 -- domains with the most requests showing differences:")
    counts = dataset.variation_counts()
    for domain, count in counts.most_common(15):
        print(f"  {domain:35s} {'#' * count} ({count})")

    flagged_honest = [d for d in counts if d in world.long_tail]
    print(f"\nuniform-priced long-tail shops falsely flagged: {len(flagged_honest)}")

    print("\nFig. 2 -- magnitude of the flagged variations (max/min ratio):")
    clean = clean_reports(dataset.reports(), world.rates)
    stats = domain_ratio_stats(clean.kept, only_variation=True)
    print(f"  (currency guard: x{clean.guard:.4f})")
    for domain in sorted(stats, key=lambda d: -stats[d].n)[:15]:
        s = stats[domain]
        print(
            f"  {domain:35s} n={s.n:3d} median=x{s.median:.3f} "
            f"IQR=[x{s.q25:.3f}, x{s.q75:.3f}] max=x{s.maximum:.3f}"
        )


if __name__ == "__main__":
    main()
