"""The columnar report store: one dataset spine from merge to figures.

A :class:`ReportTable` holds every :class:`~repro.core.reports.PriceCheckReport`
of a dataset as parallel arrays of primitives instead of a list of
dataclasses:

* **string pools** -- domains, URLs, vantage names, currencies, and the
  other repeated strings are interned once into a :class:`StringPool`;
  the columns store small integer ids,
* **prefix-indexed observations** -- all reports' observations live in
  one flat set of columns; ``obs_start[i] .. obs_start[i+1]`` is report
  *i*'s slice,
* **precomputed per-report statistics** -- ``n_valid``, ``min_usd``,
  ``max_usd`` and ``ratio`` are computed exactly once at append time (the
  dataclass recomputes them on every property access), which is what the
  single-pass analysis kernels aggregate over.

Reports are *materialized lazily*: :meth:`ReportTable.report` builds the
dataclass for one row on demand and caches it, so iterating a dataset
still hands out ordinary :class:`PriceCheckReport` objects -- repeated
access returns the same object, preserving the old mutate-in-place
semantics of :func:`repro.analysis.cleaning.clean_reports` (which now
goes through :meth:`ReportTable.set_guard`, keeping the column and any
cached rows in sync).

Derived indexes (:meth:`rows_by_domain`, :meth:`rows_by_url`,
:meth:`day_values`) are cached against a version counter that every
append bumps, so a growing table never serves a stale index.

:class:`TableSlice` is an ordered, lazily-materializing view of a row
subset.  It behaves as a ``Sequence[PriceCheckReport]`` -- old list-based
call sites keep working -- while carrying ``(table, rows)`` so the
analysis layer can dispatch to columnar kernels instead of walking
dataclasses.
"""

from __future__ import annotations

import weakref
from typing import Iterator, Optional, Sequence, Union

from repro.core.reports import PriceCheckReport, VantageObservation

__all__ = ["StringPool", "ReportTable", "TableSlice", "as_table_slice"]


class StringPool:
    """Interned strings: value -> small stable id, id -> value."""

    __slots__ = ("_values", "_ids")

    def __init__(self, values: Optional[Sequence[str]] = None) -> None:
        self._values: list[str] = []
        self._ids: dict[str, int] = {}
        if values:
            for value in values:
                self.intern(value)

    def intern(self, value: str) -> int:
        """The id of ``value``, interning it on first sight."""
        found = self._ids.get(value)
        if found is None:
            found = len(self._values)
            self._ids[value] = found
            self._values.append(value)
        return found

    def id_of(self, value: str) -> Optional[int]:
        """The id of ``value`` if already interned, else ``None``."""
        return self._ids.get(value)

    def value(self, i: int) -> str:
        """The string behind id ``i``."""
        return self._values[i]

    @property
    def values(self) -> list[str]:
        """All interned strings, in id order (do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"StringPool({len(self._values)} strings)"


#: Sentinel id for "no currency" in the observation currency column.
NO_CURRENCY = -1


def _check_ids(
    name: str, column: Sequence[int], pool: StringPool,
    *, sentinel: Optional[int] = None,
) -> None:
    """Validate that every id in ``column`` resolves inside ``pool``
    (``sentinel``, if given, is additionally allowed)."""
    if not column:
        return
    lo, hi = min(column), max(column)
    floor = sentinel if sentinel is not None else 0
    if lo < floor or hi >= len(pool):
        raise ValueError(
            f"{name} id column references outside its string pool "
            f"(ids span [{lo}, {hi}], pool has {len(pool)} entries)"
        )


class ReportTable:
    """Columnar storage for check reports (see module docstring)."""

    def __init__(self) -> None:
        # String pools ---------------------------------------------------
        self.domains = StringPool()
        self.urls = StringPool()
        self.vantages = StringPool()
        self.countries = StringPool()
        self.cities = StringPool()
        self.currencies = StringPool()
        self.methods = StringPool()
        self.errors = StringPool()
        self.origins = StringPool()
        self.raw_texts = StringPool()
        # Report-level columns -------------------------------------------
        self.check_id: list[str] = []
        self.url_id: list[int] = []
        self.domain_id: list[int] = []
        self.day_index: list[int] = []
        self.timestamp: list[float] = []
        self.guard: list[float] = []
        self.origin_id: list[int] = []
        #: Prefix index into the observation columns; length ``n + 1``.
        self.obs_start: list[int] = [0]
        # Derived report-level columns (guard-independent, append-time) --
        self.n_valid: list[int] = []
        self.min_usd: list[Optional[float]] = []
        self.max_usd: list[Optional[float]] = []
        self.ratio: list[Optional[float]] = []
        # Observation-level columns --------------------------------------
        self.o_vantage_id: list[int] = []
        self.o_country_id: list[int] = []
        self.o_city_id: list[int] = []
        self.o_ok: list[bool] = []
        self.o_raw_id: list[int] = []
        self.o_amount: list[Optional[float]] = []
        self.o_currency_id: list[int] = []
        self.o_usd: list[Optional[float]] = []
        self.o_method_id: list[int] = []
        self.o_error_id: list[int] = []
        # Caches ---------------------------------------------------------
        # Weak: a full list-style pass over a big table must not pin every
        # dataclass forever next to the columns; rows stay cached (and
        # identity-stable, and set_guard-synced) while someone holds them.
        self._rows: "weakref.WeakValueDictionary[int, PriceCheckReport]" = (
            weakref.WeakValueDictionary()
        )
        self._version = 0
        self._index_cache: dict[str, tuple[int, object]] = {}

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def append(self, report: PriceCheckReport) -> int:
        """Append one report's columns; returns its row index.

        The dataclass itself is *not* retained -- rows materialize lazily
        through :meth:`report` -- so the shard merge can stream reports
        straight into the table without keeping an intermediate list.
        """
        i = len(self.check_id)
        self.check_id.append(report.check_id)
        self.url_id.append(self.urls.intern(report.url))
        self.domain_id.append(self.domains.intern(report.domain))
        self.day_index.append(report.day_index)
        self.timestamp.append(report.timestamp)
        self.guard.append(report.guard_threshold)
        self.origin_id.append(self.origins.intern(report.origin))

        n_valid = 0
        lo: Optional[float] = None
        hi: Optional[float] = None
        for obs in report.observations:
            self.o_vantage_id.append(self.vantages.intern(obs.vantage))
            self.o_country_id.append(self.countries.intern(obs.country_code))
            self.o_city_id.append(self.cities.intern(obs.city))
            self.o_ok.append(obs.ok)
            self.o_raw_id.append(self.raw_texts.intern(obs.raw_text))
            self.o_amount.append(obs.amount)
            self.o_currency_id.append(
                NO_CURRENCY if obs.currency is None
                else self.currencies.intern(obs.currency)
            )
            usd = obs.usd
            self.o_usd.append(usd)
            self.o_method_id.append(self.methods.intern(obs.method))
            self.o_error_id.append(self.errors.intern(obs.error))
            if obs.ok and usd is not None:
                n_valid += 1
                if lo is None or usd < lo:
                    lo = usd
                if hi is None or usd > hi:
                    hi = usd
        self.obs_start.append(len(self.o_ok))
        self.n_valid.append(n_valid)
        self.min_usd.append(lo)
        self.max_usd.append(hi)
        self.ratio.append(
            hi / lo if n_valid >= 2 and lo is not None and lo > 0 else None  # type: ignore[operator]
        )
        self._version += 1
        return i

    def extend(self, reports) -> None:
        """Append many reports (any iterable)."""
        for report in reports:
            self.append(report)

    def append_segment(self, other: "ReportTable") -> dict[str, list[int]]:
        """Fold another table's rows onto this one, column by column.

        This is the checkpoint-resume fast path: a loaded day-segment is
        merged by remapping its pool ids into this table's pools and
        extending the columns directly -- no :class:`PriceCheckReport` is
        materialized, so peak memory stays at (spine + one segment).  The
        result is byte-identical to appending ``other``'s reports one by
        one (test-asserted).

        Returns the id remap per pool (``other`` id -> ``self`` id) so
        wrapping datasets (:class:`~repro.crowd.dataset.CrowdDataset`)
        can translate their own columns with the same maps.
        """
        maps = {
            name: [pool.intern(v) for v in getattr(other, attr).values]
            for name, attr, pool in (
                ("domains", "domains", self.domains),
                ("urls", "urls", self.urls),
                ("vantages", "vantages", self.vantages),
                ("countries", "countries", self.countries),
                ("cities", "cities", self.cities),
                ("currencies", "currencies", self.currencies),
                ("methods", "methods", self.methods),
                ("errors", "errors", self.errors),
                ("origins", "origins", self.origins),
                ("raw", "raw_texts", self.raw_texts),
            )
        }
        self.check_id.extend(other.check_id)
        self.url_id.extend(maps["urls"][v] for v in other.url_id)
        self.domain_id.extend(maps["domains"][v] for v in other.domain_id)
        self.day_index.extend(other.day_index)
        self.timestamp.extend(other.timestamp)
        self.guard.extend(other.guard)
        self.origin_id.extend(maps["origins"][v] for v in other.origin_id)
        base = self.obs_start[-1]
        self.obs_start.extend(base + v for v in other.obs_start[1:])
        self.n_valid.extend(other.n_valid)
        self.min_usd.extend(other.min_usd)
        self.max_usd.extend(other.max_usd)
        self.ratio.extend(other.ratio)
        self.o_vantage_id.extend(
            maps["vantages"][v] for v in other.o_vantage_id
        )
        self.o_country_id.extend(
            maps["countries"][v] for v in other.o_country_id
        )
        self.o_city_id.extend(maps["cities"][v] for v in other.o_city_id)
        self.o_ok.extend(other.o_ok)
        self.o_raw_id.extend(maps["raw"][v] for v in other.o_raw_id)
        self.o_amount.extend(other.o_amount)
        self.o_currency_id.extend(
            NO_CURRENCY if v == NO_CURRENCY else maps["currencies"][v]
            for v in other.o_currency_id
        )
        self.o_usd.extend(other.o_usd)
        self.o_method_id.extend(maps["methods"][v] for v in other.o_method_id)
        self.o_error_id.extend(maps["errors"][v] for v in other.o_error_id)
        self._version += len(other)
        return maps

    def __len__(self) -> int:
        return len(self.check_id)

    @property
    def n_observations(self) -> int:
        """Total observation rows across all reports."""
        return len(self.o_ok)

    @property
    def version(self) -> int:
        """Bumped on every append; derived indexes key off it."""
        return self._version

    # ------------------------------------------------------------------
    # Row materialization
    # ------------------------------------------------------------------
    def report(self, i: int) -> PriceCheckReport:
        """Row ``i`` as a :class:`PriceCheckReport`.

        Materialized lazily and cached weakly: repeated access returns
        the same object while any reference to it is alive (so in-place
        guard writes via :meth:`set_guard` stay visible), without the
        cache pinning a full dataset of dataclasses next to the columns.
        """
        if not 0 <= i < len(self):
            raise IndexError(f"report row {i} out of range")
        cached = self._rows.get(i)
        if cached is None:
            cached = self._build_report(i)
            self._rows[i] = cached
        return cached

    def _build_report(self, i: int) -> PriceCheckReport:
        start, stop = self.obs_start[i], self.obs_start[i + 1]
        observations = [
            VantageObservation(
                vantage=self.vantages.value(self.o_vantage_id[j]),
                country_code=self.countries.value(self.o_country_id[j]),
                city=self.cities.value(self.o_city_id[j]),
                ok=self.o_ok[j],
                raw_text=self.raw_texts.value(self.o_raw_id[j]),
                amount=self.o_amount[j],
                currency=(
                    None if self.o_currency_id[j] == NO_CURRENCY
                    else self.currencies.value(self.o_currency_id[j])
                ),
                usd=self.o_usd[j],
                method=self.methods.value(self.o_method_id[j]),
                error=self.errors.value(self.o_error_id[j]),
            )
            for j in range(start, stop)
        ]
        return PriceCheckReport(
            check_id=self.check_id[i],
            url=self.urls.value(self.url_id[i]),
            domain=self.domains.value(self.domain_id[i]),
            day_index=self.day_index[i],
            timestamp=self.timestamp[i],
            observations=observations,
            guard_threshold=self.guard[i],
            origin=self.origins.value(self.origin_id[i]),
        )

    # ------------------------------------------------------------------
    # Mutation (the one analysis-sanctioned write: the cleaning guard)
    # ------------------------------------------------------------------
    def set_guard(self, value: float, rows: Optional[Sequence[int]] = None) -> None:
        """Set ``guard_threshold`` for ``rows`` (default: all).

        Updates the column *and* any already-materialized row objects, so
        the columnar kernels and dataclass consumers can never disagree
        about the guard.
        """
        indices = range(len(self)) if rows is None else rows
        guard = self.guard
        cached = self._rows
        for i in indices:
            guard[i] = value
            row = cached.get(i)
            if row is not None:
                row.guard_threshold = value

    # ------------------------------------------------------------------
    # Per-row helpers shared by the analysis kernels
    # ------------------------------------------------------------------
    def row_has_variation(self, i: int) -> bool:
        """``ratio > guard`` for row ``i`` (the paper's detection rule)."""
        ratio = self.ratio[i]
        return ratio is not None and ratio > self.guard[i]

    def ratios_by_vantage(self, i: int) -> list[tuple[int, float]]:
        """(vantage_id, price/min) pairs for row ``i``.

        Mirrors :meth:`PriceCheckReport.ratios_by_vantage` exactly: empty
        when the row's minimum is missing or non-positive; one entry per
        distinct vantage in first-occurrence order, last value winning.
        """
        lo = self.min_usd[i]
        if lo is None or lo <= 0:
            return []
        out: dict[int, float] = {}
        for j in range(self.obs_start[i], self.obs_start[i + 1]):
            if self.o_ok[j] and self.o_usd[j] is not None:
                out[self.o_vantage_id[j]] = (self.o_usd[j] or 0.0) / lo
        return list(out.items())

    def valid_obs_indices(self, i: int) -> Iterator[int]:
        """Observation rows of report ``i`` with a usable USD price."""
        for j in range(self.obs_start[i], self.obs_start[i + 1]):
            if self.o_ok[j] and self.o_usd[j] is not None:
                yield j

    # ------------------------------------------------------------------
    # Cached derived indexes (invalidated by the version counter)
    # ------------------------------------------------------------------
    def _cached(self, key: str, build):
        entry = self._index_cache.get(key)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        data = build()
        self._index_cache[key] = (self._version, data)
        return data

    def rows_by_domain(self) -> dict[int, list[int]]:
        """domain_id -> row indices, keys in first-occurrence order."""

        def build() -> dict[int, list[int]]:
            out: dict[int, list[int]] = {}
            for i, did in enumerate(self.domain_id):
                out.setdefault(did, []).append(i)
            return out

        return self._cached("rows_by_domain", build)

    def rows_by_url(self) -> dict[int, list[int]]:
        """url_id -> row indices, keys in first-occurrence order."""

        def build() -> dict[int, list[int]]:
            out: dict[int, list[int]] = {}
            for i, uid in enumerate(self.url_id):
                out.setdefault(uid, []).append(i)
            return out

        return self._cached("rows_by_url", build)

    def day_values(self) -> list[int]:
        """Sorted distinct ``day_index`` values."""
        return self._cached("day_values", lambda: sorted(set(self.day_index)))

    # ------------------------------------------------------------------
    # Columnar (de)serialization -- the io layer's compact layout
    # ------------------------------------------------------------------
    def to_columns(self) -> tuple[dict, dict, dict]:
        """(pools, report columns, observation columns) as JSON-ready dicts."""
        pools = {
            "domains": self.domains.values,
            "urls": self.urls.values,
            "vantages": self.vantages.values,
            "countries": self.countries.values,
            "cities": self.cities.values,
            "currencies": self.currencies.values,
            "methods": self.methods.values,
            "errors": self.errors.values,
            "origins": self.origins.values,
            "raw": self.raw_texts.values,
        }
        reports = {
            "check_id": self.check_id,
            "url": self.url_id,
            "domain": self.domain_id,
            "day": self.day_index,
            "ts": self.timestamp,
            "guard": self.guard,
            "origin": self.origin_id,
            "obs_start": self.obs_start,
        }
        observations = {
            "vantage": self.o_vantage_id,
            "country": self.o_country_id,
            "city": self.o_city_id,
            "ok": [1 if ok else 0 for ok in self.o_ok],
            "raw": self.o_raw_id,
            "amount": self.o_amount,
            "currency": self.o_currency_id,
            "usd": self.o_usd,
            "method": self.o_method_id,
            "error": self.o_error_id,
        }
        return pools, reports, observations

    @classmethod
    def from_columns(
        cls, pools: dict, reports: dict, observations: dict
    ) -> "ReportTable":
        """Rebuild a table from :meth:`to_columns` output.

        Validates column shapes, restores the pools verbatim (ids in the
        column arrays reference pool positions), and recomputes the
        derived per-report statistics in one pass -- no dataclass
        round-trip.
        """
        table = cls()
        try:
            table.domains = StringPool(pools["domains"])
            table.urls = StringPool(pools["urls"])
            table.vantages = StringPool(pools["vantages"])
            table.countries = StringPool(pools["countries"])
            table.cities = StringPool(pools["cities"])
            table.currencies = StringPool(pools["currencies"])
            table.methods = StringPool(pools["methods"])
            table.errors = StringPool(pools["errors"])
            table.origins = StringPool(pools["origins"])
            table.raw_texts = StringPool(pools["raw"])

            table.check_id = [str(c) for c in reports["check_id"]]
            n = len(table.check_id)
            table.url_id = [int(v) for v in reports["url"]]
            table.domain_id = [int(v) for v in reports["domain"]]
            table.day_index = [int(v) for v in reports["day"]]
            table.timestamp = [float(v) for v in reports["ts"]]
            table.guard = [float(v) for v in reports["guard"]]
            table.origin_id = [int(v) for v in reports["origin"]]
            table.obs_start = [int(v) for v in reports["obs_start"]]

            table.o_vantage_id = [int(v) for v in observations["vantage"]]
            m = len(table.o_vantage_id)
            table.o_country_id = [int(v) for v in observations["country"]]
            table.o_city_id = [int(v) for v in observations["city"]]
            table.o_ok = [bool(v) for v in observations["ok"]]
            table.o_raw_id = [int(v) for v in observations["raw"]]
            table.o_amount = [
                None if v is None else float(v) for v in observations["amount"]
            ]
            table.o_currency_id = [int(v) for v in observations["currency"]]
            table.o_usd = [
                None if v is None else float(v) for v in observations["usd"]
            ]
            table.o_method_id = [int(v) for v in observations["method"]]
            table.o_error_id = [int(v) for v in observations["error"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad columnar table data: {exc}") from exc

        report_cols = (
            table.url_id, table.domain_id, table.day_index, table.timestamp,
            table.guard, table.origin_id,
        )
        if any(len(col) != n for col in report_cols):
            raise ValueError("report columns have mismatched lengths")
        if len(table.obs_start) != n + 1 or (n == 0 and table.obs_start != [0]):
            raise ValueError("obs_start must have one entry per report plus one")
        obs_cols = (
            table.o_country_id, table.o_city_id, table.o_ok, table.o_raw_id,
            table.o_amount, table.o_currency_id, table.o_usd,
            table.o_method_id, table.o_error_id,
        )
        if any(len(col) != m for col in obs_cols):
            raise ValueError("observation columns have mismatched lengths")
        if table.obs_start[0] != 0 or table.obs_start[-1] != m:
            raise ValueError("obs_start does not cover the observation columns")
        if any(
            table.obs_start[i] > table.obs_start[i + 1] for i in range(n)
        ):
            raise ValueError("obs_start must be non-decreasing")
        # Every interned id must resolve inside its pool -- a corrupted
        # column must fail loudly here, not misattribute rows downstream
        # (negative ids would otherwise silently wrap via list indexing).
        _check_ids("url", table.url_id, table.urls)
        _check_ids("domain", table.domain_id, table.domains)
        _check_ids("origin", table.origin_id, table.origins)
        _check_ids("vantage", table.o_vantage_id, table.vantages)
        _check_ids("country", table.o_country_id, table.countries)
        _check_ids("city", table.o_city_id, table.cities)
        _check_ids("raw", table.o_raw_id, table.raw_texts)
        _check_ids("method", table.o_method_id, table.methods)
        _check_ids("error", table.o_error_id, table.errors)
        _check_ids(
            "currency", table.o_currency_id, table.currencies,
            sentinel=NO_CURRENCY,
        )

        # Recompute the derived statistics in one columnar pass.
        for i in range(n):
            n_valid = 0
            lo: Optional[float] = None
            hi: Optional[float] = None
            for j in range(table.obs_start[i], table.obs_start[i + 1]):
                usd = table.o_usd[j]
                if table.o_ok[j] and usd is not None:
                    n_valid += 1
                    if lo is None or usd < lo:
                        lo = usd
                    if hi is None or usd > hi:
                        hi = usd
            table.n_valid.append(n_valid)
            table.min_usd.append(lo)
            table.max_usd.append(hi)
            table.ratio.append(
                hi / lo if n_valid >= 2 and lo is not None and lo > 0 else None  # type: ignore[operator]
            )
        table._version = n
        return table

    def __repr__(self) -> str:
        return (
            f"ReportTable({len(self)} reports, {self.n_observations} "
            f"observations, {len(self.domains)} domains)"
        )


class TableSlice:
    """An ordered, lazily-materializing view of table rows.

    Quacks like a ``Sequence[PriceCheckReport]`` so every list-based call
    site keeps working, while exposing ``(table, rows)`` for the columnar
    analysis kernels (see :func:`as_table_slice`).
    """

    __slots__ = ("table", "rows")

    def __init__(
        self, table: ReportTable, rows: Optional[Sequence[int]] = None
    ) -> None:
        self.table = table
        self.rows: Sequence[int] = range(len(table)) if rows is None else rows

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[PriceCheckReport, "TableSlice"]:
        if isinstance(index, slice):
            return TableSlice(self.table, self.rows[index])
        return self.table.report(self.rows[index])

    def __iter__(self) -> Iterator[PriceCheckReport]:
        report = self.table.report
        for i in self.rows:
            yield report(i)

    def __repr__(self) -> str:
        return f"TableSlice({len(self)} of {len(self.table)} rows)"


def as_table_slice(reports) -> Optional[TableSlice]:
    """The :class:`TableSlice` behind ``reports``, if it has one.

    The analysis adapters call this to dispatch: a slice (or a bare
    table) routes to the single-pass columnar kernels, anything else
    falls back to the seed list-based implementation.
    """
    if isinstance(reports, TableSlice):
        return reports
    if isinstance(reports, ReportTable):
        return TableSlice(reports)
    return None
