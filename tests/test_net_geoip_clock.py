"""Geo-IP database and virtual clock tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.clock import SECONDS_PER_DAY, SimDate, VirtualClock
from repro.net.geoip import (
    COUNTRY_SEED,
    GeoIPDatabase,
    GeoLocation,
    IPAddressPlan,
    int_to_ip,
    ip_to_int,
)


class TestIpCodec:
    @pytest.mark.parametrize("ip", ["0.0.0.0", "10.1.2.3", "255.255.255.255"])
    def test_roundtrip(self, ip):
        assert int_to_ip(ip_to_int(ip)) == ip

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_int_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestAddressPlan:
    def test_allocations_unique(self):
        plan = IPAddressPlan()
        seen = {plan.allocate("US", "Boston") for _ in range(50)}
        assert len(seen) == 50

    def test_lookup_resolves_allocation(self):
        plan = IPAddressPlan()
        db = plan.database()
        for code, country, cities in COUNTRY_SEED[:5]:
            ip = plan.allocate(code, cities[0])
            location = db.lookup(ip)
            assert location == GeoLocation(code, country, cities[0])

    def test_default_city(self):
        plan = IPAddressPlan()
        ip = plan.allocate("FI")
        assert plan.database().lookup(ip).city == "Tampere"

    def test_unknown_country(self):
        with pytest.raises(KeyError):
            IPAddressPlan().allocate("XX")

    def test_unknown_city(self):
        with pytest.raises(KeyError):
            IPAddressPlan().allocate("US", "Atlantis")

    def test_unallocated_space_unresolved(self):
        db = IPAddressPlan().database()
        assert db.lookup("1.2.3.4") is None
        assert db.lookup("not-an-ip") is None

    def test_country_code_helper(self):
        plan = IPAddressPlan()
        db = plan.database()
        assert db.country_code(plan.allocate("BR")) == "BR"
        assert db.country_code("1.2.3.4") is None

    def test_blocks_disjoint(self):
        blocks = sorted(IPAddressPlan().blocks, key=lambda b: b.base)
        for a, b in zip(blocks, blocks[1:]):
            assert a.base + a.size <= b.base


class TestSimDate:
    def test_epoch(self):
        date = SimDate(0)
        assert (date.year, date.month, date.day) == (2013, 1, 1)
        assert date.iso() == "2013-01-01"

    def test_end_of_january(self):
        assert SimDate(30).iso() == "2013-01-31"
        assert SimDate(31).iso() == "2013-02-01"

    def test_non_leap_year(self):
        assert SimDate(58).iso() == "2013-02-28"
        assert SimDate(59).iso() == "2013-03-01"

    def test_year_wrap(self):
        assert SimDate(365).iso() == "2014-01-01"

    def test_label(self):
        assert SimDate(0).label() == "01-Jan-2013"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimDate(-1)

    def test_ordering(self):
        assert SimDate(3) < SimDate(4)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(10.5)
        assert clock.now == 10.5

    def test_no_time_travel(self):
        clock = VirtualClock(100)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(50)
        with pytest.raises(ValueError):
            VirtualClock(-5)

    def test_date_property(self):
        clock = VirtualClock()
        clock.advance(3 * SECONDS_PER_DAY + 5)
        assert clock.date == SimDate(3)
        assert clock.seconds_into_day() == 5

    def test_days_iterator(self):
        clock = VirtualClock(2 * SECONDS_PER_DAY)
        days = list(clock.days(3))
        assert [d.day_index for d in days] == [2, 3, 4]
        assert [d.day_index for d in clock.days(2, start_day=7)] == [7, 8]
