"""HTTP adapter: thin routes over :class:`~repro.serve.service.SheriffService`.

Stdlib only -- :class:`~http.server.ThreadingHTTPServer` with one
handler thread per connection.  Routes do transport work (parse the
path, decode the body, map :class:`~repro.serve.service.ServiceError`
to a status code) and nothing else; every decision lives in the service
core so the routes stay testable by inspection.

Endpoints::

    POST /checks              one on-demand price check
    POST /campaigns           submit a campaign job (202 + job status)
    GET  /jobs/<id>           job progress / outcome
    GET  /jobs/<id>/results   columnar JSONL results of a finished job
    GET  /healthz             service + fleet health

``POST /checks`` responds with :func:`~repro.serve.service.encode_report`
bytes -- byte-identical to the batch path's canonical report JSON.
Everything else responds ``json.dumps(..., sort_keys=True)``.
"""

from __future__ import annotations

import json
import logging
import re
import shutil
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.service import BadRequest, NotFound, ServiceError, SheriffService

__all__ = ["SheriffHTTPServer", "SheriffRequestHandler"]

logger = logging.getLogger("repro.serve")

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9-]+)(/results)?$")

#: Cap request bodies well above any legal spec; a client streaming
#: gigabytes at /checks should fail fast, not exhaust memory.
_MAX_BODY = 1 << 20


class SheriffHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the service it serves."""

    daemon_threads = True

    def __init__(self, address, service: SheriffService) -> None:
        super().__init__(address, SheriffRequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


class SheriffRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the owning server's :class:`SheriffService`."""

    server_version = "sheriff-repro/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive: one connection, many checks
    #: TCP_NODELAY.  A memo-hit check is sub-millisecond, and the reply
    #: goes out as two small writes (headers, body); under Nagle plus
    #: delayed ACK every keep-alive response stalls ~40 ms waiting for
    #: the client's ACK, swamping the serving latency it frames.
    disable_nagle_algorithm = True

    # -- plumbing -------------------------------------------------------
    @property
    def service(self) -> SheriffService:
        return self.server.service

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route http.server's per-request lines to our logger at DEBUG."""
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(status, blob)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("request body required")
        if length > _MAX_BODY:
            raise BadRequest("request body too large")
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """/healthz, /jobs/<id>, /jobs/<id>/results."""
        try:
            if self.path == "/healthz":
                self._send_json(200, self.service.healthz())
                return
            match = _JOB_PATH.match(self.path)
            if match and match.group(2):
                self._send_results(match.group(1))
                return
            if match:
                self._send_json(200, self.service.job_status(match.group(1)))
                return
            raise NotFound(f"no such route GET {self.path}")
        except ServiceError as exc:
            self._send_error_json(exc.status, str(exc))
        except Exception:  # noqa: BLE001 - connection isolation boundary
            logger.exception("GET %s failed", self.path)
            self._send_error_json(500, "internal error")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """/checks (200, report bytes) and /campaigns (202, job status)."""
        try:
            if self.path == "/checks":
                body = self.service.check(self._read_json())
                self._send_bytes(200, body)
                return
            if self.path == "/campaigns":
                status = self.service.submit_campaign(self._read_json())
                self._send_json(202, status)
                return
            raise NotFound(f"no such route POST {self.path}")
        except ServiceError as exc:
            self._send_error_json(exc.status, str(exc))
        except Exception:  # noqa: BLE001 - connection isolation boundary
            logger.exception("POST %s failed", self.path)
            self._send_error_json(500, "internal error")

    def _send_results(self, job_id: str) -> None:
        """Stream a finished job's columnar JSONL from disk."""
        path = self.service.job_results_path(job_id)
        size = path.stat().st_size
        with path.open("rb") as fh:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(size))
            self.end_headers()
            shutil.copyfileobj(fh, self.wfile)
