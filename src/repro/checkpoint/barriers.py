"""Injectable crash barriers for the checkpoint commit protocol.

A *barrier* is a named no-op on the checkpoint hot path.  In production
nothing is installed and :func:`barrier` costs one global read.  The
crash-injection harness (``tests/crashkit.py``) installs a hook that
SIGKILLs the process at the *n*-th firing of a chosen barrier, which is
how the test suite proves every commit-protocol window -- mid-day,
mid-segment-flush, mid-manifest-write, and the post-commit day boundary
-- resumes byte-identical.

Barrier placement is part of the commit protocol's contract: each name
marks a moment where a kill leaves a distinct on-disk state.

==========================  =============================================
name                        the world a kill leaves behind
==========================  =============================================
``mid-day``                 per streamed report: the segment exists only
                            in memory, nothing on disk changed
``segment-flush``           the segment tmp file is written but not yet
                            fsync'd/renamed: a ``*.tmp`` orphan
``manifest-mid-write``      the segment + state files are durable but the
                            manifest record is torn mid-line
``segment-committed``       the manifest record is fsync'd: the clean
                            day-boundary kill
``worker-respawn``          the exec supervisor is mid-recovery: a shard
                            worker died and its replacement is about to
                            spawn; nothing of the failed attempt was
                            folded, the day is uncommitted
==========================  =============================================

``worker-respawn`` is fired by :class:`~repro.exec.process.
ProcessExecutor`, not the commit protocol -- it exists so the chaos
harness can prove a coordinator SIGKILL *during* worker recovery still
resumes byte-identically (worker death composes with checkpoint/resume).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = [
    "BARRIER_NAMES",
    "MANIFEST_MID_WRITE",
    "MID_DAY",
    "SEGMENT_COMMITTED",
    "SEGMENT_FLUSH",
    "WORKER_RESPAWN",
    "barrier",
    "install_barrier_hook",
]

MID_DAY = "mid-day"
SEGMENT_FLUSH = "segment-flush"
MANIFEST_MID_WRITE = "manifest-mid-write"
SEGMENT_COMMITTED = "segment-committed"
WORKER_RESPAWN = "worker-respawn"

#: Every barrier the commit protocol fires, in protocol order, plus the
#: exec supervisor's recovery window.
BARRIER_NAMES = (
    MID_DAY, SEGMENT_FLUSH, MANIFEST_MID_WRITE, SEGMENT_COMMITTED,
    WORKER_RESPAWN,
)

_hook: Optional[Callable[[str], None]] = None


def install_barrier_hook(
    hook: Optional[Callable[[str], None]],
) -> Optional[Callable[[str], None]]:
    """Install ``hook`` to observe every barrier; returns the previous one.

    Pass ``None`` to uninstall.  The hook receives the barrier name; a
    crash-injection hook never returns from its chosen firing (it kills
    the process), ordinary observers just return.
    """
    global _hook
    previous = _hook
    _hook = hook
    return previous


def barrier(name: str) -> None:
    """Fire the named barrier (a no-op unless a hook is installed)."""
    if _hook is not None:
        _hook(name)
