"""Fig. 9: price ratio of Tampere, Finland vs the cheapest location, per
crawled retailer."""

from __future__ import annotations

from repro.analysis.locations import finland_profile
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

#: The paper's two exceptions where Finland is (sometimes) the cheapest.
PAPER_EXCEPTIONS = ("www.mauijim.com", "www.tuscanyleather.it")


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 9's Finland-vs-minimum profile."""
    result = FigureResult(
        figure_id="FIG9",
        title="Magnitude of price differences in Tampere, Finland, per domain",
        paper_claim=(
            "Finland is almost never the cheaper location (exceptions: "
            "mauijim.com and tuscanyleather.it)"
        ),
        columns=("domain", "n", "median", "q25", "max"),
    )
    varied = [r for r in ctx.crawl_clean.kept if r.has_variation]
    profile = finland_profile(varied)
    for domain in sorted(profile, key=lambda d: profile[d].median):
        s = profile[domain]
        result.add_row(domain, s.n, s.median, s.q25, s.maximum)

    exceptions = {d for d, s in profile.items() if s.median <= 1.02}
    result.check(
        "exactly the paper's exceptions are Finland-cheap",
        exceptions == set(PAPER_EXCEPTIONS),
    )
    others = [s.median for d, s in profile.items() if d not in PAPER_EXCEPTIONS]
    result.check(
        "Finland pays a premium everywhere else",
        bool(others) and min(others) > 1.02,
    )
    result.check(
        "Finnish premium typically in the 5%-45% band",
        bool(others)
        and sum(1 for m in others if 1.05 <= m <= 1.45) >= 0.7 * len(others),
    )
    return result
