"""Adversarial scenario worlds and the invariant harness over them.

The ROADMAP's third axis -- "handle as many scenarios as you can
imagine" -- lives here.  The package has three layers:

* :mod:`repro.scenarios.behaviors` -- composable adversarial retailer
  behaviours (flash sales, template churn, stockouts, cloaking,
  session-sticky pricing, currency redenomination, page corruption),
* :mod:`repro.scenarios.engine` -- the :class:`Scenario` model and
  registry: named, seeded world mutations carrying machine-readable
  ground truth, applied inside
  :func:`~repro.ecommerce.world.build_world` so worker processes regrow
  them from a :class:`~repro.ecommerce.world.WorldSpec` bit-for-bit,
* :mod:`repro.scenarios.harness` -- the differential grid runner that
  executes campaign + crawl + analysis across scenario × executor ×
  burst-memo cells and checks byte-identity, memo-soundness, cleaning,
  and detection-quality invariants in one place.

Importing this package registers the built-in scenarios
(:data:`~repro.scenarios.definitions.DEFAULT_SCENARIOS`).
"""

from repro.scenarios.behaviors import (
    ChurningTemplate,
    CloakingServer,
    CurrencySwitchServer,
    FlashSale,
    PageCorruptionServer,
    SessionStickyPricing,
    StockoutServer,
)
from repro.scenarios.engine import (
    SCENARIOS,
    Scenario,
    apply_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_retailer,
)
from repro.scenarios.definitions import DEFAULT_SCENARIOS
from repro.scenarios.harness import (
    DEFAULT_GRID,
    CellResult,
    GridCell,
    check_invariants,
    run_cell,
    run_matrix,
    run_scenario_crawl,
)

__all__ = [
    "CellResult",
    "ChurningTemplate",
    "CloakingServer",
    "CurrencySwitchServer",
    "DEFAULT_GRID",
    "DEFAULT_SCENARIOS",
    "FlashSale",
    "GridCell",
    "PageCorruptionServer",
    "SCENARIOS",
    "Scenario",
    "SessionStickyPricing",
    "StockoutServer",
    "apply_scenario",
    "check_invariants",
    "get_scenario",
    "register_scenario",
    "run_cell",
    "run_matrix",
    "run_scenario_crawl",
    "scenario_names",
    "scenario_retailer",
]
