"""Product catalogs.

Each retailer owns a :class:`Catalog` of :class:`Product` items generated
deterministically from the retailer's seed.  Base prices are drawn
log-uniformly inside the category's plausible band, which is what gives
Fig. 5 its $10-$10K x-axis span once all retailers are pooled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = ["Product", "Catalog", "CATEGORY_PRICE_BANDS", "generate_catalog"]


@dataclass(frozen=True)
class Product:
    """One sellable item.

    ``base_price_usd`` is the retailer's reference price; pricing policies
    derive per-context prices from it.  ``path`` is the product page path on
    the retailer's site -- the identity $heriff fans out.
    """

    sku: str
    name: str
    category: str
    base_price_usd: float
    path: str

    def __post_init__(self) -> None:
        if self.base_price_usd <= 0:
            raise ValueError(f"non-positive price for {self.sku}")
        if not self.path.startswith("/"):
            raise ValueError(f"product path must be absolute: {self.path!r}")


#: category -> (min, max) base price band in USD, chosen to match the
#: verticals the paper names (books, clothing, office/electronics, cars,
#: department stores, hotels, travel, photography, home improvement).
CATEGORY_PRICE_BANDS: dict[str, tuple[float, float]] = {
    "books": (6.0, 80.0),
    "ebooks": (3.0, 25.0),
    "clothing": (15.0, 400.0),
    "shoes": (30.0, 350.0),
    "luxury-fashion": (90.0, 9500.0),
    "leather-goods": (40.0, 2500.0),
    "sunglasses": (80.0, 450.0),
    "electronics": (20.0, 3000.0),
    "photography": (8.0, 6500.0),
    "office": (4.0, 900.0),
    "home-improvement": (8.0, 2200.0),
    "sports-nutrition": (9.0, 120.0),
    "cycling": (10.0, 4500.0),
    "baby": (12.0, 600.0),
    "games": (5.0, 60.0),
    "hotels": (45.0, 900.0),
    "travel": (60.0, 1500.0),
    "automobiles": (1500.0, 9900.0),
    "department": (8.0, 1200.0),
    "general": (10.0, 500.0),
}

_ADJECTIVES = (
    "Classic", "Urban", "Vintage", "Premium", "Essential", "Deluxe", "Eco",
    "Pro", "Compact", "Heritage", "Signature", "Modern", "Slim", "Robust",
    "Featherweight", "Studio", "Traveler", "Nordic", "Coastal", "Alpine",
)
_NOUNS_BY_CATEGORY: dict[str, tuple[str, ...]] = {
    "books": ("Novel", "Atlas", "Cookbook", "Biography", "Anthology", "Field Guide"),
    "ebooks": ("Novel", "Short Stories", "Mystery", "Thriller", "Romance", "Sci-Fi Epic"),
    "clothing": ("Jeans", "Jacket", "Shirt", "Sweater", "Dress", "Coat", "T-Shirt"),
    "shoes": ("Sneakers", "Boots", "Loafers", "Sandals", "Oxfords", "Trainers"),
    "luxury-fashion": ("Gown", "Handbag", "Blazer", "Silk Scarf", "Trench Coat", "Clutch"),
    "leather-goods": ("Briefcase", "Wallet", "Belt", "Satchel", "Tote", "Duffel"),
    "sunglasses": ("Aviators", "Wayfarers", "Sport Shades", "Polarized Classics",),
    "electronics": ("Headphones", "Tablet", "Monitor", "Router", "Speaker", "Keyboard"),
    "photography": ("DSLR Body", "Prime Lens", "Zoom Lens", "Tripod", "Flash", "Filter Kit"),
    "office": ("Desk Chair", "Paper Ream", "Printer", "Stapler", "Ink Set", "Shredder"),
    "home-improvement": ("Drill", "Ladder", "Faucet", "Tile Pack", "Saw", "Paint Kit"),
    "sports-nutrition": ("Whey Protein", "Creatine", "BCAA Mix", "Energy Gel", "Vitamin Pack"),
    "cycling": ("Road Frame", "Wheelset", "Derailleur", "Helmet", "Saddle", "Pedal Set"),
    "baby": ("Stroller", "Car Seat", "Crib", "High Chair", "Play Mat", "Monitor"),
    "games": ("Strategy Game", "RPG", "Shooter", "Indie Puzzle", "Racing Game"),
    "hotels": ("City Room", "Suite", "Double Room", "Boutique Stay", "Resort Night"),
    "travel": ("Getaway Package", "City Break", "Beach Week", "Mountain Escape"),
    "automobiles": ("Sedan", "Hatchback", "Coupe", "Wagon", "Compact SUV", "Pickup"),
    "department": ("Blender", "Duvet", "Lamp", "Cookware Set", "Vacuum", "Toaster"),
    "general": ("Gadget", "Accessory", "Bundle", "Kit", "Set"),
}


@dataclass
class Catalog:
    """An ordered collection of a retailer's products."""

    retailer: str
    products: list[Product] = field(default_factory=list)
    _by_sku: dict[str, Product] = field(default_factory=dict, repr=False)
    _by_path: dict[str, Product] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for product in self.products:
            self._index(product)

    def _index(self, product: Product) -> None:
        if product.sku in self._by_sku:
            raise ValueError(f"duplicate sku {product.sku} in {self.retailer}")
        if product.path in self._by_path:
            raise ValueError(f"duplicate path {product.path} in {self.retailer}")
        self._by_sku[product.sku] = product
        self._by_path[product.path] = product

    def add(self, product: Product) -> None:
        """Add a product, enforcing unique SKU and path."""
        self._index(product)
        self.products.append(product)

    def by_sku(self, sku: str) -> Optional[Product]:
        """Look a product up by SKU, or None."""
        return self._by_sku.get(sku)

    def by_path(self, path: str) -> Optional[Product]:
        """Look a product up by its page path, or None."""
        return self._by_path.get(path)

    def __len__(self) -> int:
        return len(self.products)

    def __iter__(self) -> Iterator[Product]:
        return iter(self.products)

    def sample(self, count: int, *, rng: random.Random) -> list[Product]:
        """Up to ``count`` products, sampled without replacement."""
        if count >= len(self.products):
            return list(self.products)
        return rng.sample(self.products, count)


def generate_catalog(
    retailer: str,
    category: str,
    size: int,
    *,
    seed: int,
    price_band: Optional[tuple[float, float]] = None,
    path_style: str = "product",
    sku_prefix: Optional[str] = None,
    into: Optional[Catalog] = None,
) -> Catalog:
    """Generate ``size`` products for ``retailer`` deterministically.

    ``path_style`` varies the URL shape per retailer ("product" ->
    ``/product/SKU``, "p-html" -> ``/p/SKU.html``, "item-query" ->
    ``/item?sku=SKU``) so the crawler and $heriff cannot assume one scheme.

    ``sku_prefix`` overrides the default retailer-derived prefix -- needed
    when one retailer sells several categories (amazon's Kindle ebooks next
    to everything else) and the sub-catalogs must not collide.  ``into``
    appends to an existing catalog instead of creating a new one.
    """
    if size < 0:
        raise ValueError("size must be >= 0")
    if category not in CATEGORY_PRICE_BANDS:
        raise KeyError(f"unknown category {category!r}")
    from repro.util import stable_rng

    rng = stable_rng(seed, retailer, category, "catalog")
    low, high = price_band or CATEGORY_PRICE_BANDS[category]
    if not (0 < low < high):
        raise ValueError(f"bad price band ({low}, {high})")
    nouns = _NOUNS_BY_CATEGORY.get(category, _NOUNS_BY_CATEGORY["general"])
    catalog = into if into is not None else Catalog(retailer=retailer)
    prefix = sku_prefix or _sku_prefix(retailer)
    import math

    for index in range(size):
        sku = f"{prefix}{index:05d}"
        adjective = rng.choice(_ADJECTIVES)
        noun = rng.choice(nouns)
        name = f"{adjective} {noun} {rng.randint(100, 999)}"
        # Log-uniform base price, psychologically rounded to x.99 below $200.
        price = math.exp(rng.uniform(math.log(low), math.log(high)))
        if price < 200:
            price = max(low, round(price) - 0.01)
        else:
            price = float(round(price))
        catalog.add(
            Product(
                sku=sku,
                name=name,
                category=category,
                base_price_usd=round(price, 2),
                path=_product_path(path_style, sku),
            )
        )
    return catalog


def _sku_prefix(retailer: str) -> str:
    letters = [c for c in retailer.upper() if c.isalpha()]
    return "".join(letters[:3]) or "SKU"


def _product_path(style: str, sku: str) -> str:
    if style == "product":
        return f"/product/{sku}"
    if style == "p-html":
        return f"/p/{sku}.html"
    if style == "item-query":
        return f"/item/{sku}"
    if style == "deep":
        return f"/shop/catalog/{sku}/details"
    raise ValueError(f"unknown path style {style!r}")
