"""Personas and login accounts for the personal-information experiments.

§4.4 of the paper runs two experiments:

1. **Personas** -- following the authors' earlier methodology, an
   *affluent* and a *budget-conscious* persona are "trained" by browsing
   characteristic sites (accumulating cookies), then prices are checked
   from a fixed location at a fixed time.  The paper finds **no**
   differences; our retailers likewise ignore persona cookies, and the
   experiment demonstrates the null result end to end.

2. **Login accounts** -- Kindle ebook prices on amazon.com differ between
   three logged-in users and the logged-out state, with "little correlation
   to being logged in or not".  :func:`login` drives the retailer's toy
   ``/login`` route so the auth cookie flows through the normal HTTP path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.net.http import HttpRequest, HttpResponse, SetCookie
from repro.net.transport import Network
from repro.net.urls import URL
from repro.net.vantage import VantagePoint

__all__ = [
    "Persona",
    "AFFLUENT",
    "BUDGET",
    "PersonaTrainingSite",
    "train_persona",
    "login",
    "logout",
]


@dataclass(frozen=True)
class Persona:
    """A browsing profile to be trained into a client's cookie jar."""

    name: str
    training_sites: tuple[str, ...]
    interest_tag: str


#: The two personas of the paper (and of the authors' earlier study).
AFFLUENT = Persona(
    name="affluent",
    training_sites=(
        "www.luxuryestates-blog.com",
        "www.primewatches-review.com",
        "www.firstclass-travelmag.com",
    ),
    interest_tag="luxury",
)

BUDGET = Persona(
    name="budget",
    training_sites=(
        "www.coupondigest.com",
        "www.frugal-living-tips.com",
        "www.discount-radar.com",
    ),
    interest_tag="bargain",
)


class PersonaTrainingSite:
    """A content site that tags visitors with an interest cookie.

    This is the tracking half of the persona mechanism: visiting the site
    plants ``interest=<tag>`` (plus a visit counter), exactly the signal a
    discriminating retailer *could* read -- and, per the paper's §4.4
    finding, does not.
    """

    def __init__(self, domain: str, interest_tag: str) -> None:
        self.domain = domain
        self.interest_tag = interest_tag

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve the content page and plant the interest/visit cookies."""
        visits = int(request.cookies.get("visits", "0")) + 1
        body = (
            f"<html><head><title>{self.domain}</title></head>"
            f"<body><h1>{self.domain}</h1>"
            f"<p>Editorial content about {self.interest_tag} topics.</p>"
            f"</body></html>"
        )
        response = HttpResponse.html(body)
        response.headers.add(
            "Set-Cookie", SetCookie("interest", self.interest_tag).to_header()
        )
        response.headers.add(
            "Set-Cookie", SetCookie("visits", str(visits)).to_header()
        )
        return response


def train_persona(
    vantage: VantagePoint,
    persona: Persona,
    network: Network,
    *,
    rounds: int = 3,
) -> int:
    """Browse the persona's sites ``rounds`` times; returns page count.

    After training, the vantage point's cookie jar carries the persona's
    interest cookies, which every subsequent retailer request will present.
    """
    fetched = 0
    for _ in range(rounds):
        for domain in persona.training_sites:
            vantage.fetch(network, f"http://{domain}/")
            fetched += 1
    return fetched


def login(vantage: VantagePoint, network: Network, domain: str, user: str) -> None:
    """Log ``vantage`` into ``domain`` as ``user`` via the /login route."""
    response = vantage.fetch(network, f"http://{domain}/login?user={user}")
    if not response.ok:
        raise RuntimeError(f"login to {domain} as {user!r} failed: {response.status}")
    if vantage.jar.get(domain, "auth") != user:
        raise RuntimeError(f"{domain} did not set the auth cookie for {user!r}")


def logout(vantage: VantagePoint, domain: str) -> None:
    """Drop the auth session for ``domain``."""
    vantage.jar.clear(domain)
