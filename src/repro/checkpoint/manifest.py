"""The checkpoint manifest: a fsync'd append-only commit log.

A checkpoint directory holds one ``manifest.jsonl`` whose first line is a
header (format, version, run kind, run fingerprint) and whose every
further line commits one day-segment: the segment file's name and SHA-256
digest, the row count, and the post-segment state file's name and digest.
A segment *exists* exactly when its manifest line is durable -- the
commit order (segment file, then state file, then manifest record, each
fsync'd) makes the manifest line the atomic commit point.

Crash recovery is asymmetric by design:

* a **torn tail** -- the last line has no newline or is not valid JSON --
  is the expected artifact of dying mid-append.  :meth:`Manifest.load`
  with ``repair=True`` truncates the file back to the last good line
  (fsync'd) and the run re-executes that segment deterministically;
* **anything else** -- invalid JSON mid-file, a record missing fields, a
  wrong type -- is corruption, not a crash, and raises
  :class:`ManifestError`.  Silently resuming a doctored checkpoint is the
  one failure mode this module must never have.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.checkpoint.barriers import (
    MANIFEST_MID_WRITE,
    SEGMENT_FLUSH,
    barrier,
)

__all__ = [
    "CheckpointError",
    "CheckpointMismatchError",
    "Manifest",
    "ManifestError",
    "SegmentDigestError",
    "SegmentMissingError",
    "atomic_write_bytes",
    "file_sha256",
]

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 1

#: Fields every committed segment record must carry, with their types.
_RECORD_FIELDS = {
    "seq": int,
    "day": int,
    "file": str,
    "sha256": str,
    "rows": int,
    "state_file": str,
    "state_sha256": str,
}


class CheckpointError(RuntimeError):
    """Base class for every checkpoint failure."""


class ManifestError(CheckpointError):
    """The manifest file is corrupt or structurally invalid."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint belongs to a different run configuration."""


class SegmentMissingError(CheckpointError):
    """A manifest-committed segment or state file is gone."""


class SegmentDigestError(CheckpointError):
    """A committed file's content does not match its recorded digest."""


# ----------------------------------------------------------------------
# Durable-write plumbing
# ----------------------------------------------------------------------
def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_file(path: Path) -> None:
    """fsync an already-written file by path."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` durably: tmp file, fsync, rename, fsync dir.

    A crash at any instant leaves either the old file (or nothing) or the
    complete new file -- never a torn one.  The ``segment-flush`` barrier
    fires between writing the tmp file and making it durable, which is
    exactly the window a mid-flush kill must land in.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(data)
        fh.flush()
        barrier(SEGMENT_FLUSH)
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def promote_tmp(tmp: Path, path: Path) -> None:
    """Durably promote an already-written tmp file to its final name."""
    fsync_file(tmp)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def file_sha256(path: Union[str, Path]) -> str:
    """Hex SHA-256 of a file's content."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def _normalize(obj: dict) -> dict:
    """JSON round-trip so in-memory and loaded fingerprints compare equal
    (tuples become lists, keys become strings)."""
    return json.loads(json.dumps(obj, sort_keys=True))


class Manifest:
    """The parsed commit log of one checkpoint directory."""

    FILENAME = "manifest.jsonl"

    def __init__(
        self, path: Path, header: dict, records: list[dict]
    ) -> None:
        self.path = path
        self.header = header
        self.records = records

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.header["kind"]

    @property
    def fingerprint(self) -> dict:
        return self.header["fingerprint"]

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: Path, *, kind: str, fingerprint: dict) -> "Manifest":
        """Start a fresh manifest holding only the header line."""
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "kind": kind,
            "fingerprint": _normalize(fingerprint),
        }
        line = json.dumps(header, separators=(",", ":"), sort_keys=True)
        atomic_write_bytes(path, (line + "\n").encode("utf-8"))
        return cls(path, header, [])

    @classmethod
    def load(cls, path: Path, *, repair: bool = False) -> "Manifest":
        """Parse a manifest, optionally repairing a torn tail.

        ``repair=True`` (the resume path) truncates a torn or
        JSON-invalid *last* line back to the preceding good line and
        fsyncs -- the lost segment record's files are simply rewritten
        when the run re-executes that segment.  ``repair=False`` raises
        :class:`ManifestError` on any damage.
        """
        try:
            raw = path.read_bytes()
        except FileNotFoundError as exc:
            raise ManifestError(f"{path}: no manifest") from exc
        if not raw:
            raise ManifestError(f"{path}: manifest is empty")

        lines = raw.split(b"\n")
        torn_tail = lines[-1] != b""  # no trailing newline -> torn append
        complete = lines[:-1]  # the fragment (or the final b"") drops off
        good_bytes = 0
        parsed: list[dict] = []
        bad_index: Optional[int] = None
        for i, line in enumerate(complete):
            try:
                obj = json.loads(line)
                if not isinstance(obj, dict):
                    raise ValueError("not an object")
            except ValueError:
                bad_index = i
                break
            parsed.append(obj)
            good_bytes += len(line) + 1
        if bad_index is not None and bad_index != len(complete) - 1:
            raise ManifestError(
                f"{path}: line {bad_index + 1} is not valid JSON "
                f"(mid-file corruption)"
            )
        tail_damage = torn_tail or bad_index is not None
        if tail_damage and not repair:
            raise ManifestError(f"{path}: torn or invalid final line")

        if not parsed:
            raise ManifestError(f"{path}: no intact header line")
        header = parsed[0]
        if header.get("format") != FORMAT_NAME:
            raise ManifestError(f"{path}: not a {FORMAT_NAME} manifest")
        if header.get("version") != FORMAT_VERSION:
            raise ManifestError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        if not isinstance(header.get("kind"), str) or not isinstance(
            header.get("fingerprint"), dict
        ):
            raise ManifestError(f"{path}: header missing kind/fingerprint")

        records = []
        for n, record in enumerate(parsed[1:]):
            for name, typ in _RECORD_FIELDS.items():
                value = record.get(name)
                if not isinstance(value, typ) or (
                    typ is int and isinstance(value, bool)
                ):
                    raise ManifestError(
                        f"{path}: segment record {n} field {name!r} is "
                        f"{value!r}, expected {typ.__name__}"
                    )
            if record["seq"] != n:
                raise ManifestError(
                    f"{path}: segment record {n} carries seq "
                    f"{record['seq']} (must be contiguous from 0)"
                )
            records.append(record)

        if tail_damage:
            with path.open("r+b") as fh:
                fh.truncate(good_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return cls(path, header, records)

    # ------------------------------------------------------------------
    def check_run(self, *, kind: str, fingerprint: dict) -> None:
        """Refuse to resume a checkpoint of a different run."""
        if self.kind != kind:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint kind {self.kind!r} != {kind!r}"
            )
        if self.fingerprint != _normalize(fingerprint):
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint fingerprint does not match this "
                f"run's world/config (checkpointed a different experiment?)"
            )

    def append_segment(self, record: dict) -> None:
        """Durably append one segment record -- the commit point.

        The line is written in two flushed halves with the
        ``manifest-mid-write`` barrier between them, so a kill at the
        barrier leaves a genuinely torn line on disk (the artifact the
        repair path and the crash tests exercise).
        """
        record = dict(record, seq=len(self.records))
        line = (
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        ).encode("utf-8")
        split = len(line) // 2
        with self.path.open("ab") as fh:
            fh.write(line[:split])
            fh.flush()
            os.fsync(fh.fileno())
            barrier(MANIFEST_MID_WRITE)
            fh.write(line[split:])
            fh.flush()
            os.fsync(fh.fileno())
        self.records.append(record)
