"""Ablation benchmarks for the methodology's design choices (DESIGN.md §5).

Each ablation disables one noise defense and quantifies the damage:

* **Currency guard** -- naive flagging (any USD ratio > 1) brands nearly
  every localized-but-honest shop a discriminator; the guard removes the
  false positives without losing true ones.
* **Anchor robustness** -- structural node paths break when promo banners
  shift page structure; selector anchors survive.
* **Synchronization** -- comparing prices fetched on different days
  conflates temporal repricing with geographic discrimination; the
  synchronized per-round ratio does not.
"""

from __future__ import annotations

import pytest

from repro.analysis.cleaning import clean_reports
from repro.analysis.personal import derive_anchor_for_domain
from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.extraction import extract_price
from repro.core.highlight import PriceAnchor
from repro.ecommerce.world import WorldConfig, build_world
from repro.net.clock import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def guard_world():
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=25))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    return world, backend


def test_bench_ablation_currency_guard(benchmark, guard_world):
    """False-positive rate on honest shops: naive vs guarded detection."""
    world, backend = guard_world
    reports = []
    for domain in world.long_tail:
        anchor = derive_anchor_for_domain(world, domain)
        for product in world.retailer(domain).catalog.products[:2]:
            reports.append(backend.check(
                CheckRequest(url=f"http://{domain}{product.path}", anchor=anchor)
            ))

    def analyze():
        clean = clean_reports(reports, world.rates)
        guarded = sum(1 for r in clean.kept if r.has_variation)
        naive = sum(
            1 for r in clean.kept
            if r.ratio is not None and r.ratio > 1.0 + 1e-9
        )
        return guarded, naive

    guarded, naive = benchmark(analyze)
    benchmark.extra_info["false_positives_guarded"] = guarded
    benchmark.extra_info["false_positives_naive"] = naive
    # The ablation's point: naive conversion sees phantom variation on
    # most localized honest shops; the guard sees none.
    assert guarded == 0
    assert naive > 0


def test_bench_ablation_anchor_robustness(benchmark, guard_world):
    """Selector anchors vs raw node paths across structural re-renders."""
    world, _ = guard_world
    domain = "www.amazon.com"
    retailer = world.retailer(domain)
    full_anchor = derive_anchor_for_domain(world, domain)
    path_only = PriceAnchor(
        selector=None, node_path=full_anchor.node_path,
        sample_text=full_anchor.sample_text,
    )
    vantage = world.vantage_points[0]
    # Different days -> different promo-banner structure per render.
    pages = []
    for product in retailer.catalog.products[:10]:
        response = vantage.fetch(world.network, f"http://{domain}{product.path}")
        pages.append(response.body)
        world.clock.advance(SECONDS_PER_DAY / 4)

    def extract_both():
        with_selector = sum(
            1 for page in pages if extract_price(page, full_anchor).ok
        )
        with_path = sum(
            1 for page in pages if extract_price(page, path_only).ok
            and extract_price(page, path_only).amount is not None
        )
        return with_selector, with_path

    with_selector, with_path = benchmark(extract_both)
    benchmark.extra_info["selector_hits"] = with_selector
    benchmark.extra_info["node_path_hits"] = with_path
    assert with_selector == len(pages)


def test_bench_ablation_repeated_measurement(benchmark):
    """Single-shot vs repeated checks under per-request A/B noise.

    hotels.com randomizes ~12% of requests +5%.  A single synchronized
    check occasionally catches different buckets at different vantage
    points and inflates the ratio; requiring the variation to repeat
    across rounds (the paper's defense) suppresses those flukes on
    *uncovered* products while keeping real geo variation intact.
    """
    from repro.analysis.cleaning import repeatable_products
    from repro.ecommerce.pricing import coverage_includes

    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    domain = "www.hotels.com"
    anchor = derive_anchor_for_domain(world, domain)
    uncovered = [
        p for p in world.retailer(domain).catalog.products
        if not coverage_includes(p, 0.75, world.config.seed)
    ][:8]
    reports = []
    for round_index in range(4):
        world.clock.advance_to(
            max(world.clock.now, (500 + round_index) * SECONDS_PER_DAY)
        )
        for product in uncovered:
            reports.append(backend.check(CheckRequest(
                url=f"http://{domain}{product.path}", anchor=anchor,
            )))

    guard = 1.02

    def analyze():
        single_shot = {
            r.url for r in reports[: len(uncovered)]
            if r.ratio is not None and r.ratio > guard
        }
        repeated = repeatable_products(reports, guard=guard)
        surviving = single_shot & repeated
        return len(single_shot), len(surviving)

    flagged_once, surviving = benchmark(analyze)
    benchmark.extra_info["single_shot_flags"] = flagged_once
    benchmark.extra_info["surviving_repetition"] = surviving
    # Repetition must not add flags; typically it removes the flukes.
    assert surviving <= flagged_once


def test_bench_ablation_synchronization(benchmark):
    """Per-round (synchronized) vs cross-day (unsynchronized) ratios under
    temporal repricing (hotels.com drifts +/-8% per day)."""
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    domain = "www.hotels.com"
    anchor = derive_anchor_for_domain(world, domain)
    # Pick an uncovered product (no geo pricing): true sync ratio ~1.0.
    from repro.ecommerce.pricing import coverage_includes

    uncovered = next(
        p for p in world.retailer(domain).catalog.products
        if not coverage_includes(p, 0.75, world.config.seed)
    )
    url = f"http://{domain}{uncovered.path}"
    daily_reports = []
    for day in range(5):
        world.clock.advance_to(max(world.clock.now, (400 + day) * SECONDS_PER_DAY))
        daily_reports.append(backend.check(CheckRequest(url=url, anchor=anchor)))

    def compare():
        sync_ratios = [r.ratio for r in daily_reports if r.ratio]
        pooled = [
            obs.usd for r in daily_reports for obs in r.valid_observations()
        ]
        unsync_ratio = max(pooled) / min(pooled)
        return max(sync_ratios), unsync_ratio

    sync_max, unsync = benchmark(compare)
    benchmark.extra_info["synchronized_max_ratio"] = round(sync_max, 4)
    benchmark.extra_info["unsynchronized_ratio"] = round(unsync, 4)
    # Cross-day pooling manufactures variation the synchronized
    # methodology correctly avoids.
    assert unsync > sync_max
    assert unsync > 1.05
