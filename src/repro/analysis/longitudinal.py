"""Longitudinal analysis: is the variation persistent and repeatable?

§4.1: "In some cases, we see a 100% coverage, pointing to the fact that
price variations are a persistent and repeatable phenomenon."  §6: "The
results however are repeatable."

The crawl measures every product on several days; these functions quantify
stability across those rounds:

* :func:`daily_extent` -- per-domain extent computed separately per day,
* :func:`extent_stability` -- how much a domain's extent moves day to day,
* :func:`product_persistence` -- per domain, the fraction of its varying
  products that vary on *every* day they were measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.reports import PriceCheckReport
from repro.store import as_table_slice

__all__ = ["daily_extent", "extent_stability", "product_persistence", "StabilityRow"]


def daily_extent(
    reports: Sequence[PriceCheckReport],
) -> dict[str, dict[int, float]]:
    """domain -> day_index -> fraction of that day's checks with variation."""
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        ratio, guard = table.ratio, table.guard
        totals: dict[tuple[int, int], int] = {}
        varied: dict[tuple[int, int], int] = {}
        for i in sliced.rows:
            r = ratio[i]
            if r is None:
                continue
            key = (table.domain_id[i], table.day_index[i])
            totals[key] = totals.get(key, 0) + 1
            if r > guard[i]:
                varied[key] = varied.get(key, 0) + 1
        value = table.domains.value
        out: dict[str, dict[int, float]] = {}
        for (did, day), total in totals.items():
            out.setdefault(value(did), {})[day] = (
                varied.get((did, day), 0) / total
            )
        return out
    totals = {}
    varied = {}
    for report in reports:
        if report.ratio is None:
            continue
        key = (report.domain, report.day_index)
        totals[key] = totals.get(key, 0) + 1
        if report.has_variation:
            varied[key] = varied.get(key, 0) + 1
    out = {}
    for (domain, day), total in totals.items():
        out.setdefault(domain, {})[day] = varied.get((domain, day), 0) / total
    return out


@dataclass(frozen=True)
class StabilityRow:
    """Per-domain extent stability across measurement days."""

    domain: str
    days: int
    mean_extent: float
    max_daily_delta: float  # largest |extent(day) - extent(next day)|

    @property
    def is_stable(self) -> bool:
        """Stable = day-to-day extent moves by less than 15 points."""
        return self.max_daily_delta <= 0.15


def extent_stability(reports: Sequence[PriceCheckReport]) -> dict[str, StabilityRow]:
    """domain -> :class:`StabilityRow` over the crawl days."""
    per_day = daily_extent(reports)
    out: dict[str, StabilityRow] = {}
    for domain, by_day in per_day.items():
        days = sorted(by_day)
        extents = [by_day[d] for d in days]
        deltas = [abs(a - b) for a, b in zip(extents, extents[1:])] or [0.0]
        out[domain] = StabilityRow(
            domain=domain,
            days=len(days),
            mean_extent=sum(extents) / len(extents),
            max_daily_delta=max(deltas),
        )
    return out


def product_persistence(
    reports: Sequence[PriceCheckReport], *, min_days: int = 2
) -> dict[str, float]:
    """domain -> fraction of ever-varying products that vary on every day.

    Only products measured on at least ``min_days`` distinct days
    contribute -- persistence of a single observation is vacuous.
    """
    if min_days < 2:
        raise ValueError("min_days must be >= 2 to speak of persistence")
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        ratio, guard = table.ratio, table.guard
        rounds_ids: dict[int, dict[int, list[bool]]] = {}
        for i in sliced.rows:
            r = ratio[i]
            if r is None:
                continue
            rounds_ids.setdefault(table.domain_id[i], {}).setdefault(
                table.url_id[i], []
            ).append(r > guard[i])
        value = table.domains.value
        out: dict[str, float] = {}
        for did, products_ids in rounds_ids.items():
            eligible = [
                flags for flags in products_ids.values()
                if len(flags) >= min_days and any(flags)
            ]
            if not eligible:
                continue
            persistent = sum(1 for flags in eligible if all(flags))
            out[value(did)] = persistent / len(eligible)
        return out
    rounds: dict[str, dict[str, list[bool]]] = {}
    for report in reports:
        if report.ratio is None:
            continue
        rounds.setdefault(report.domain, {}).setdefault(report.url, []).append(
            report.has_variation
        )
    out = {}
    for domain, products in rounds.items():
        eligible = {
            url: flags for url, flags in products.items()
            if len(flags) >= min_days and any(flags)
        }
        if not eligible:
            continue
        persistent = sum(1 for flags in eligible.values() if all(flags))
        out[domain] = persistent / len(eligible)
    return out
