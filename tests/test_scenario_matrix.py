"""The adversarial scenario matrix: ground truth, behaviours, invariants.

Three layers of assertion:

* **Behaviour units** -- each adversarial behaviour does exactly what it
  claims (sale schedules, churn rotation, stockout determinism, cloak
  budgets and their session state, currency switches, corruption
  flavours).
* **Detection scoring** -- the precision/recall scorer itself.
* **The matrix** -- for every registered scenario, the harness's
  invariants hold: detection precision 1.0 / recall >= 0.9 against
  ground truth, byte identity memo-on vs memo-off (fast tier) and
  across the full executor × memo grid (slow tier), expected memo
  demotions, and cleaning conduct on corrupted pages.

The matrix also proves its own teeth: turning the operator's daily
re-anchoring off makes template churn win, and an aggressive cloaking
budget visibly hides a real discriminator -- detection quality is a
measurement here, not an assumption.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.cleaning import clean_reports
from repro.analysis.detection import DetectionScore, DomainTruth, score_detection
from repro.core.backend import SheriffBackend
from repro.ecommerce.catalog import generate_catalog
from repro.ecommerce.localization import locale_for_country
from repro.ecommerce.pricing import PricingContext, UniformPricing, signals_read
from repro.ecommerce.retailer import Retailer
from repro.ecommerce.templates import (
    TEMPLATE_FAMILIES,
    ClassicTemplate,
    GridTemplate,
    ProductView,
)
from repro.ecommerce.world import WorldConfig, build_world, mult_policy, geo_table
from repro.scenarios import (
    DEFAULT_SCENARIOS,
    SCENARIOS,
    ChurningTemplate,
    CloakingServer,
    CurrencySwitchServer,
    FlashSale,
    GridCell,
    PageCorruptionServer,
    SessionStickyPricing,
    StockoutServer,
    check_invariants,
    get_scenario,
    run_cell,
    run_matrix,
)
from repro.scenarios.harness import DEFAULT_GRID

SEED = 2013


def _ctx(**kwargs) -> PricingContext:
    defaults = dict(country_code="US", city="Boston", day_index=10)
    defaults.update(kwargs)
    return PricingContext(**defaults)


def _product(sku="TST00001", price=100.0):
    catalog = generate_catalog("www.unit.test", "books", 4, seed=3)
    product = catalog.products[0]
    return dataclasses.replace(product, base_price_usd=price, sku=sku)


# ----------------------------------------------------------------------
# Behaviour units: pricing
# ----------------------------------------------------------------------
class TestFlashSale:
    def test_declares_day_index_on_top_of_inner(self):
        policy = FlashSale(UniformPricing(), factor=0.5)
        assert signals_read(policy) == frozenset({"day_index"})
        geo = FlashSale(mult_policy(geo_table(us=1.0), seed=1), factor=0.5)
        assert "country_code" in signals_read(geo)

    def test_sale_days_recur_with_the_period(self):
        policy = FlashSale(UniformPricing(), factor=0.5, period_days=3, seed=7)
        on_days = [day for day in range(12) if policy.sale_on(day)]
        assert len(on_days) == 4
        assert all(b - a == 3 for a, b in zip(on_days, on_days[1:]))

    def test_price_scales_only_on_sale_days(self):
        policy = FlashSale(UniformPricing(), factor=0.6, period_days=2, seed=1)
        product = _product(price=50.0)
        sale_day = next(day for day in range(4) if policy.sale_on(day))
        off_day = next(day for day in range(4) if not policy.sale_on(day))
        assert policy.price(product, _ctx(day_index=sale_day)) == pytest.approx(30.0)
        assert policy.price(product, _ctx(day_index=off_day)) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashSale(UniformPricing(), factor=0.0)
        with pytest.raises(ValueError):
            FlashSale(UniformPricing(), period_days=1)


class TestSessionStickyPricing:
    def test_declares_identity(self):
        policy = SessionStickyPricing(UniformPricing())
        assert "identity" in signals_read(policy)

    def test_levels_stick_per_identity_and_differ_between(self):
        policy = SessionStickyPricing(UniformPricing(), amplitude=0.15, seed=3)
        product = _product(price=80.0)
        alice_a = policy.price(product, _ctx(identity="s1"))
        alice_b = policy.price(product, _ctx(identity="s1", day_index=99))
        bob = policy.price(product, _ctx(identity="s2"))
        assert alice_a == alice_b  # sticks across days
        assert alice_a != bob  # differs between sessions
        assert 80.0 * 0.85 <= alice_a <= 80.0 * 1.15

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionStickyPricing(UniformPricing(), amplitude=0.0)


# ----------------------------------------------------------------------
# Behaviour units: template churn
# ----------------------------------------------------------------------
class TestChurningTemplate:
    def test_rotates_through_every_family(self):
        template = ChurningTemplate(period_days=1, seed=5)
        families = [template.family_for_day(day).name for day in range(4)]
        assert sorted(families) == sorted(t.name for t in TEMPLATE_FAMILIES)
        assert all(a != b for a, b in zip(families, families[1:]))

    def test_selector_tracks_the_rendered_family(self):
        template = ChurningTemplate(period_days=1, seed=5)
        for day in range(4):
            assert (
                template.selector_for_day(day)
                == template.family_for_day(day).price_selector
            )

    def test_render_dispatches_on_view_day(self):
        template = ChurningTemplate(
            families=(ClassicTemplate(), GridTemplate()), period_days=1, seed=0
        )
        product = _product()
        views = [
            ProductView(
                retailer_name="Unit", domain="www.unit.test", product=product,
                price_text="$10.00", locale=locale_for_country("US"),
                day_index=day,
            )
            for day in (0, 1)
        ]
        rendered = {template.family_for_day(day).name for day in (0, 1)}
        assert rendered == {"classic", "grid"}
        # A classic page has the id anchor; a grid page has none.
        from repro.htmlmodel.selectors import Selector

        for view in views:
            document = template.render(view)
            family = template.family_for_day(view.day_index)
            found = Selector.parse(family.price_selector).select_one(document)
            assert found is not None and found.text() == "$10.00"

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurningTemplate(families=(ClassicTemplate(),))
        with pytest.raises(ValueError):
            ChurningTemplate(period_days=0)


# ----------------------------------------------------------------------
# Behaviour units: servers
# ----------------------------------------------------------------------
def _bare_world():
    return build_world(WorldConfig(
        seed=SEED, catalog_scale=0.15, long_tail_domains=0,
        include_long_tail=False, include_named_retailers=False,
    ))


def _unit_retailer(domain="www.unit.test", policy=None, template=None):
    return Retailer(
        domain=domain,
        name="Unit",
        category="books",
        catalog=generate_catalog(domain, "books", 5, seed=SEED),
        policy=policy or UniformPricing(),
        template=template or ClassicTemplate(),
    )


def _fetch(world, server, path, *, vantage=0, day=0):
    from repro.net.clock import SECONDS_PER_DAY

    world.network.register("www.unit.test", server)
    if day * SECONDS_PER_DAY > world.clock.now:
        world.clock.advance_to(day * SECONDS_PER_DAY)
    return world.vantage_points[vantage].fetch(
        world.network, f"http://www.unit.test{path}"
    )


class TestStockoutServer:
    def test_stockout_is_deterministic_per_sku_and_day(self):
        world = _bare_world()
        retailer = _unit_retailer()
        server = StockoutServer(
            retailer, geoip=world.geoip, rates=world.rates,
            seed=SEED, stockout_rate=0.5,
        )
        decisions = {
            (p.sku, day): server.stocked_out(p.sku, day)
            for p in retailer.catalog for day in range(6)
        }
        assert any(decisions.values()) and not all(decisions.values())
        again = StockoutServer(
            retailer, geoip=world.geoip, rates=world.rates,
            seed=SEED, stockout_rate=0.5,
        )
        assert decisions == {
            key: again.stocked_out(sku, day)
            for key in decisions for (sku, day) in [key]
        }

    def test_out_of_stock_day_serves_404_other_days_serve_pages(self):
        world = _bare_world()
        retailer = _unit_retailer()
        server = StockoutServer(
            retailer, geoip=world.geoip, rates=world.rates,
            seed=SEED, stockout_rate=0.5,
        )
        product = retailer.catalog.products[0]
        out_day = next(d for d in range(20) if server.stocked_out(product.sku, d))
        in_day = next(
            d for d in range(out_day + 1, 40)
            if not server.stocked_out(product.sku, d)
        )
        assert not _fetch(world, server, product.path, day=out_day).ok
        assert _fetch(world, server, product.path, day=in_day).ok

    def test_validation(self):
        world = _bare_world()
        with pytest.raises(ValueError):
            StockoutServer(
                _unit_retailer(), geoip=world.geoip, rates=world.rates,
                stockout_rate=1.0,
            )


class TestCloakingServer:
    def _server(self, world, budget):
        return CloakingServer(
            _unit_retailer(policy=mult_policy(
                geo_table(us=1.0, fi=1.4), seed=SEED)),
            geoip=world.geoip, rates=world.rates, seed=SEED,
            daily_request_budget=budget,
        )

    def test_over_budget_origin_sees_uniform_prices(self):
        world = _bare_world()
        server = self._server(world, budget=2)
        product = server.retailer.catalog.products[0]
        finland = next(
            i for i, vp in enumerate(world.vantage_points)
            if vp.location.country_code == "FI"
        )
        truthful = _fetch(world, server, product.path, vantage=finland).body
        _fetch(world, server, product.path, vantage=finland)
        cloaked = _fetch(world, server, product.path, vantage=finland).body
        assert server.cloaked_served > 0
        assert truthful != cloaked  # FI premium gone once cloaked

    def test_under_budget_origin_keeps_seeing_the_truth(self):
        world = _bare_world()
        server = self._server(world, budget=50)
        product = server.retailer.catalog.products[0]
        first = _fetch(world, server, product.path).body
        second = _fetch(world, server, product.path).body
        assert server.cloaked_served == 0
        assert first == second

    def test_unmemoizable_and_state_round_trips(self):
        world = _bare_world()
        server = self._server(world, budget=2)
        assert server.signature_profile() is None
        product = server.retailer.catalog.products[0]
        for _ in range(3):
            _fetch(world, server, product.path)
        state = server.session_state()
        assert state["cloaked_served"] == server.cloaked_served
        assert any(count >= 3 for count in state["ip_day_counts"].values())
        twin = self._server(world, budget=2)
        twin.restore_session_state(state)
        assert twin.session_state() == state

    def test_validation(self):
        world = _bare_world()
        with pytest.raises(ValueError):
            self._server(world, budget=0)


class TestCurrencySwitchServer:
    def test_home_currency_before_switch_localized_after(self):
        world = _bare_world()
        server = CurrencySwitchServer(
            _unit_retailer(), geoip=world.geoip, rates=world.rates,
            seed=SEED, switch_day=5,
        )
        # home_country US -> home currency is USD; a Finnish visitor sees
        # dollars before the switch and euros after.
        finland = next(
            i for i, vp in enumerate(world.vantage_points)
            if vp.location.country_code == "FI"
        )
        product = server.retailer.catalog.products[0]
        before = _fetch(world, server, product.path, vantage=finland, day=4).body
        after = _fetch(world, server, product.path, vantage=finland, day=5).body
        assert "$" in before and "€" not in before
        assert "€" in after


class TestPageCorruptionServer:
    def _server(self, world, rate=0.5):
        return PageCorruptionServer(
            _unit_retailer(), geoip=world.geoip, rates=world.rates,
            seed=SEED, corruption_rate=rate,
        )

    def test_both_flavours_occur_and_are_deterministic(self):
        world = _bare_world()
        server = self._server(world)
        bodies = {
            server.corruption_for(p.sku, day)
            for p in server.retailer.catalog for day in range(8)
        }
        assert None in bodies and len(bodies) == 3  # clean + two flavours

    def test_corrupted_page_is_served_with_http_200(self):
        world = _bare_world()
        server = self._server(world)
        product, day = next(
            (p, d)
            for p in server.retailer.catalog for d in range(10)
            if server.corruption_for(p.sku, d) is not None
        )
        response = _fetch(world, server, product.path, day=day)
        assert response.ok
        assert response.body == server.corruption_for(product.sku, day)

    def test_validation(self):
        world = _bare_world()
        with pytest.raises(ValueError):
            self._server(world, rate=1.0)


# ----------------------------------------------------------------------
# Detection scoring
# ----------------------------------------------------------------------
class TestDetectionScore:
    def _score(self, detected, truth):
        return DetectionScore(
            detected=detected, magnitude={}, truth=tuple(truth), guard=1.01
        )

    def test_percentages(self):
        truth = (
            DomainTruth("a.test", True, min_ratio=1.2),
            DomainTruth("b.test", True, min_ratio=1.2),
            DomainTruth("c.test", False),
        )
        score = self._score({"a.test": 1.0, "c.test": 0.8}, truth)
        assert score.true_positives == ["a.test"]
        assert score.false_positives == ["c.test"]
        assert score.false_negatives == ["b.test"]
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_untracked_detection_is_a_false_positive(self):
        score = self._score({"mystery.test": 1.0}, [DomainTruth("a.test", False)])
        assert score.false_positives == ["mystery.test"]
        assert score.precision == 0.0

    def test_empty_cases_score_perfect(self):
        score = self._score({}, [DomainTruth("a.test", False)])
        assert score.precision == 1.0 and score.recall == 1.0

    def test_magnitude_violations(self):
        truth = (DomainTruth("a.test", True, min_ratio=1.3),)
        score = DetectionScore(
            detected={"a.test": 1.0}, magnitude={"a.test": 1.05},
            truth=truth, guard=1.01,
        )
        assert score.magnitude_violations() == {"a.test": (1.05, 1.3)}

    def test_domain_truth_validation(self):
        with pytest.raises(ValueError):
            DomainTruth("a.test", True, min_ratio=0.9)
        with pytest.raises(ValueError):
            DomainTruth("a.test", False, min_ratio=1.2)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_at_least_six_scenarios_ship(self):
        assert len(DEFAULT_SCENARIOS) >= 6
        assert set(DEFAULT_SCENARIOS) == set(SCENARIOS)

    def test_every_scenario_has_both_verdict_kinds(self):
        """Each world plants something to find AND something to clear --
        precision and recall are both measured everywhere."""
        for name in DEFAULT_SCENARIOS:
            scenario = get_scenario(name)
            labels = {entry.discriminates for entry in scenario.truth}
            assert labels == {True, False}, name

    def test_unknown_scenario_is_a_helpful_error(self):
        with pytest.raises(KeyError, match="registered:"):
            get_scenario("no-such-world")
        with pytest.raises(KeyError, match="registered:"):
            build_world(WorldConfig(scenario="no-such-world"))

    def test_scenario_worlds_regrow_from_their_spec(self):
        world = get_scenario("session-sticky").build_world(SEED)
        rebuilt = world.spec().build()
        assert sorted(rebuilt.retailers) == sorted(world.retailers)
        assert rebuilt.extra_crowd_weights == world.extra_crowd_weights
        assert type(rebuilt.servers["www.stickysession.test"]) is type(
            world.servers["www.stickysession.test"]
        )


# ----------------------------------------------------------------------
# The matrix: per-scenario invariants (fast tier: inline cells only)
# ----------------------------------------------------------------------
_FAST_CELLS = (
    GridCell(burst_memo=True),
    GridCell(burst_memo=False),
    GridCell(burst_memo=True, validate_fraction=1.0),
)


@pytest.mark.parametrize("name", DEFAULT_SCENARIOS)
def test_scenario_invariants_inline(name):
    """Detection precision 1.0 / recall >= 0.9, memo-on == memo-off
    bytes, audited memo hits, expected demotions -- per scenario."""
    scenario = get_scenario(name)
    results = [run_cell(scenario, cell, seed=SEED) for cell in _FAST_CELLS]
    assert check_invariants(scenario, results) == []
    score = results[0].score
    assert score.precision == 1.0
    assert score.recall >= 0.9
    assert score.magnitude_violations() == {}


def test_reanchoring_is_load_bearing_for_template_churn():
    """A pre-crawl anchor (the paper's one-time manual step) goes stale
    the moment the template churns: detection loses the churning
    discriminator while fabricating nothing.  The registered scenario
    passes only because its operator re-anchors daily -- the harness
    measures that difference instead of assuming it."""
    from repro.crawler import CrawlConfig, build_plan, run_crawl
    from repro.net.clock import SECONDS_PER_DAY

    scenario = get_scenario("template-churn")
    world = scenario.build_world(SEED)
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    # The operator anchors the day *before* the crawl window opens...
    world.clock.advance_to((scenario.crawl_start_day - 1) * SECONDS_PER_DAY)
    plan = build_plan(
        world, domains=list(scenario.crawl_domains),
        products_per_retailer=scenario.products_per_retailer, seed=SEED,
    )
    # ... and every crawl day renders a different family than anchored.
    dataset = run_crawl(
        world, backend, plan,
        CrawlConfig(
            days=scenario.crawl_days, start_day=scenario.crawl_start_day,
            pacing_seconds=scenario.pacing_seconds,
        ),
    )
    score = score_detection(
        dataset.reports, world.rates, scenario.truth,
        min_extent=scenario.min_extent,
    )
    assert score.precision == 1.0  # churn never fabricates findings
    assert score.recall < 0.9  # ... but it hides real ones
    assert "www.churnshop.test" in score.false_negatives


def test_aggressive_cloaking_hides_a_real_discriminator():
    """With a budget the paced crawl cannot stay under, the cloak wins:
    recall drops while precision stays perfect (cloaked pages are
    uniform, so nothing false is manufactured)."""
    scenario = get_scenario("cloaking")
    world = scenario.build_world(SEED)
    server = world.servers["www.cloakedgeo.test"]
    server.daily_request_budget = 1
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    from repro.scenarios.harness import run_scenario_crawl

    crawl = run_scenario_crawl(world, backend, scenario, seed=SEED)
    score = score_detection(
        crawl.reports, world.rates, scenario.truth,
        min_extent=scenario.min_extent,
    )
    assert server.cloaked_served > 0
    assert score.precision == 1.0
    assert "www.cloakedgeo.test" in score.false_negatives


def test_page_noise_dies_in_cleaning_with_named_reasons():
    """Corrupted pages are eaten by exactly the declared guards."""
    scenario = get_scenario("page-noise")
    result = run_cell(scenario, GridCell(), seed=SEED)
    assert result.drop_counts.get("non-positive-price", 0) > 0
    assert result.drop_counts.get("too-few-observations", 0) > 0
    # Nothing corrupt reaches the kept set: every kept report has a full
    # complement of positive prices.
    world = scenario.build_world(SEED)
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    from repro.scenarios.harness import run_scenario_crawl

    crawl = run_scenario_crawl(world, backend, scenario, seed=SEED)
    clean = clean_reports(crawl.reports, world.rates, require_repeatable=True)
    for report in clean.kept:
        assert all(obs.amount > 0 for obs in report.valid_observations())


def test_corrupted_rounds_cannot_veto_clean_verdicts():
    """Regression for the cleaning-order bug the matrix surfaced: a
    product serving $0.00 corruption on one day must not make its clean,
    varying day fail the repeatability rule."""
    scenario = get_scenario("page-noise")
    world = scenario.build_world(SEED)
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    from repro.scenarios.harness import run_scenario_crawl

    crawl = run_scenario_crawl(world, backend, scenario, seed=SEED)
    strict = clean_reports(crawl.reports, world.rates, require_repeatable=True)
    lax = clean_reports(crawl.reports, world.rates, require_repeatable=False)
    strict_geo = [r for r in strict.kept if r.domain == "www.noisygeo.test"]
    lax_geo = [r for r in lax.kept if r.domain == "www.noisygeo.test"]
    # Repeatability may only drop genuinely unrepeatable variation; the
    # planted geo discriminator varies on every clean round.
    assert {r.check_id for r in strict_geo} == {r.check_id for r in lax_geo}


# ----------------------------------------------------------------------
# The matrix: the full executor × memo grid (slow tier)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("name", DEFAULT_SCENARIOS)
def test_scenario_full_grid(name):
    """The acceptance grid: scenario × executor(local/process, N∈{1,2})
    × memo(on/off) (+ a fully audited memo cell) is byte-identical and
    holds every invariant."""
    scenario = get_scenario(name)
    results = run_matrix(scenario, DEFAULT_GRID, seed=SEED)
    assert check_invariants(scenario, results) == []
    digests = {result.digest() for result in results}
    assert len(digests) == 1


# ----------------------------------------------------------------------
# Crash matrix: stateful scenarios through SIGKILL + resume (slow tier)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("name", ["session-sticky", "cloaking"])
def test_stateful_scenario_survives_kill_and_resume(name, tmp_path):
    """The two stateful scenarios -- session-sticky pricing (per-session
    cookie state) and cloaking (per-(ip, day) request budgets) -- are
    exactly the worlds where a resume that loses server/session state
    would silently change detection.  Kill the checkpointed campaign
    mid-run with a real SIGKILL, resume it in a fresh process, run the
    scenario crawl on the resumed world, and the DomainTruth detection
    scores (and the campaign bytes, and the archive chain) must equal
    the uninterrupted run's."""
    from tests.crashkit import run_to_completion, run_until_killed

    def spec(tag: str, **overrides) -> dict:
        base = {
            "kind": "scenario",
            "scenario": name,
            "seed": SEED,
            "checkpoint_dir": str(tmp_path / tag / "ckpt"),
            "out": str(tmp_path / tag / "campaign.jsonl"),
            "result": str(tmp_path / tag / "result.json"),
        }
        base.update(overrides)
        return base

    reference = run_to_completion(spec("ref"))
    assert reference["score"]["true_positives"], (
        f"{name}: reference run detected nothing -- matrix has no teeth"
    )

    # Kill mid-day (a report just streamed in, the segment is un-durable)
    # and at a day boundary (mid manifest append) -- both windows where
    # session/cloak state has advanced past the last durable commit.
    for tag, point, count in (
        ("midday", "mid-day", 17),
        ("boundary", "manifest-mid-write", 2),
    ):
        run_until_killed(spec(tag, kill={"point": point, "count": count}))
        resumed = run_to_completion(spec(tag, resume=True))
        context = f"{name}/{point}"
        assert resumed["score"] == reference["score"], (
            f"{context}: detection scores changed across kill+resume"
        )
        assert resumed["out_sha256"] == reference["out_sha256"], (
            f"{context}: campaign bytes changed across kill+resume"
        )
        assert resumed["archive_chain"] == reference["archive_chain"], (
            f"{context}: archive hash chain diverged across kill+resume"
        )
        assert resumed["crawl_rows"] == reference["crawl_rows"]
