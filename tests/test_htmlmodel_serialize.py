"""Serializer tests, including the parse/serialize round-trip property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.htmlmodel.build import E, T, document
from repro.htmlmodel.dom import Document, Element, Text
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.serialize import escape_attr, escape_text, to_html


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestSerialization:
    def test_simple_roundtrip_text(self):
        doc = document(E("div", {"id": "x"}, T("hello")))
        assert to_html(doc) == '<div id="x">hello</div>'

    def test_void_element_no_end_tag(self):
        assert to_html(E("br")) == "<br>"
        assert to_html(E("img", {"src": "a.png"})) == '<img src="a.png">'

    def test_empty_attribute(self):
        assert to_html(E("script", {"async": ""})) == "<script async></script>"

    def test_raw_text_not_escaped(self):
        script = E("script", None, T("if (a < b) x();"))
        assert to_html(script) == "<script>if (a < b) x();</script>"

    def test_text_nodes_escaped(self):
        assert to_html(E("p", None, T("1 < 2 & 3"))) == "<p>1 &lt; 2 &amp; 3</p>"

    def test_type_error(self):
        with pytest.raises(TypeError):
            to_html(object())  # type: ignore[arg-type]


def _equivalent(a, b) -> bool:
    """Structural equality of two trees."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Text):
        return a.data == b.data
    if isinstance(a, Element):
        if a.tag != b.tag or a.attrs != b.attrs:
            return False
    if len(a.children) != len(b.children):
        return False
    return all(_equivalent(x, y) for x, y in zip(a.children, b.children))


# Tags that nest freely: no implied-close interactions (putting a <div>
# inside a <p> would change structure on reparse, as in a real browser).
_tag = st.sampled_from(["div", "span", "section", "em", "article", "b", "strong"])
_attr_name = st.sampled_from(["id", "class", "data-x", "title", "href"])
_attr_value = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=12
)
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=20,
)


def _element(children) -> st.SearchStrategy:
    return st.builds(
        lambda tag, attrs, kids: _build(tag, attrs, kids),
        _tag,
        st.dictionaries(_attr_name, _attr_value, max_size=3),
        st.lists(children, max_size=4),
    )


def _build(tag, attrs, kids):
    el = Element(tag, attrs)
    for kid in kids:
        el.append(kid)
    return el


_node = st.recursive(
    st.builds(Text, _text), _element, max_leaves=20
)


@given(st.lists(_node, max_size=4))
@settings(max_examples=60, deadline=None)
def test_serialize_parse_roundtrip(children):
    """to_html . parse_html is the identity on normalized trees.

    Caveats encoded in the normalization: adjacent text nodes merge when
    reparsed, and attribute whitespace in class lists is preserved.
    """
    doc = Document()
    for child in children:
        doc.append(child)
    html = to_html(doc)
    reparsed = parse_html(html)
    assert _equivalent(_normalize(doc), _normalize(reparsed))


def _normalize(node):
    """Merge adjacent text nodes and drop empty text, recursively."""
    if isinstance(node, Text):
        return node
    clone = Document() if isinstance(node, Document) else Element(node.tag, node.attrs)
    pending_text: list[str] = []
    for child in node.children:
        if isinstance(child, Text):
            if child.data:
                pending_text.append(child.data)
            continue
        if pending_text:
            clone.append(Text("".join(pending_text)))
            pending_text = []
        clone.append(_normalize(child))
    if pending_text:
        clone.append(Text("".join(pending_text)))
    return clone


def test_retailer_page_roundtrip(tiny_world):
    """A real rendered page survives serialize -> parse -> serialize."""
    retailer = tiny_world.retailer("www.digitalrev.com")
    vantage = tiny_world.vantage_points[0]
    product = retailer.catalog.products[0]
    response = vantage.fetch(
        tiny_world.network, f"http://{retailer.domain}{product.path}"
    )
    html = response.body
    again = to_html(parse_html(html))
    assert to_html(parse_html(again)) == again
