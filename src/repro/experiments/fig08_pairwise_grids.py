"""Fig. 8: pairwise per-location price-ratio grids for three retailers."""

from __future__ import annotations

from repro.analysis.locations import pairwise_grid
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

HOMEDEPOT_CITIES = (
    "USA - Albany", "USA - Boston", "USA - Los Angeles",
    "USA - Chicago", "USA - Lincoln", "USA - New York",
)
AMAZON_COUNTRIES = (
    "Belgium - Liege", "Brazil - Sao Paulo", "Finland - Tampere",
    "Germany - Berlin", "Spain (Linux,FF)", "USA - New York",
)
KILLAH_COUNTRIES = (
    "Brazil - Sao Paulo", "Finland - Tampere", "Germany - Berlin",
    "Spain (Linux,FF)", "UK - London", "USA - New York",
)


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 8's three pairwise grids."""
    result = FigureResult(
        figure_id="FIG8",
        title="Pairwise location grids: homedepot (US cities), amazon, killah",
        paper_claim=(
            "homedepot: LA~Boston and Albany~Boston equal, New York dearer "
            "than Chicago, Boston-Lincoln mixed; amazon: constant across US, "
            "varies across countries; killah: country-level differences"
        ),
        columns=("retailer", "row", "col", "n", "relationship"),
    )
    reports = ctx.crawl_clean.kept

    hd = pairwise_grid(reports, "www.homedepot.com", HOMEDEPOT_CITIES)
    az = pairwise_grid(reports, "www.amazon.com", AMAZON_COUNTRIES)
    kl = pairwise_grid(reports, "store.killah.com", KILLAH_COUNTRIES)

    for name, grid in (("homedepot", hd), ("amazon", az), ("killah", kl)):
        for (row, col), panel in sorted(grid.items()):
            if row < col:  # render each unordered pair once
                result.add_row(
                    name, row, col, len(panel.points), panel.relationship()
                )

    result.check(
        "homedepot: Albany and Boston get similar prices",
        hd[("USA - Albany", "USA - Boston")].relationship() == "equal",
    )
    result.check(
        "homedepot: LA and Boston get similar prices",
        hd[("USA - Los Angeles", "USA - Boston")].relationship()
        in ("equal", "row-dearer"),
    )
    result.check(
        "homedepot: New York consistently dearer than Chicago",
        hd[("USA - New York", "USA - Chicago")].relationship() == "row-dearer",
    )
    boston_lincoln = hd[("USA - Boston", "USA - Lincoln")]
    result.check(
        "homedepot: Boston-Lincoln leans both ways (mixed pair)",
        boston_lincoln.relationship() == "mixed"
        or (
            0.0 < boston_lincoln.fraction_row_dearer()
            and boston_lincoln.fraction_row_dearer() < 1.0 - boston_lincoln.fraction_equal()
        ),
    )
    # Kindle ebooks are identity-keyed, so amazon panels legitimately mix
    # geo structure with per-identity scatter (the paper calls the amazon
    # grid "a diverse set of behaviors"); we therefore check majorities.
    de_us = az[("Germany - Berlin", "USA - New York")]
    result.check(
        "amazon: Germany dearer than USA for most products",
        de_us.fraction_row_dearer() > 0.5,
    )
    de_es = az[("Germany - Berlin", "Spain (Linux,FF)")]
    result.check(
        "amazon: Germany and Spain mostly equal (same euro price)",
        de_es.fraction_equal() > 0.6,
    )
    result.check(
        "killah: Finland dearer than Germany",
        kl[("Finland - Tampere", "Germany - Berlin")].relationship() == "row-dearer",
    )
    result.check(
        "killah: diverse relationships present",
        len({panel.relationship() for panel in kl.values()}) >= 2,
    )
    return result
