"""The crowd: $heriff's beta-test user population.

340 users from 18 countries (§3.2), generated deterministically.  Country
shares are skewed the way a Barcelona-built browser extension's beta
population plausibly was (Spain heaviest, then US/EU).  Each user gets a
browser profile, an IP in their city's geo block, and 2-3 category
interests that bias which shops they check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extension import UserClient
from repro.net.geoip import COUNTRY_NAMES, COUNTRY_SEED, GeoLocation, IPAddressPlan
from repro.net.useragent import profile_for
from repro.util import stable_rng

__all__ = ["CrowdUser", "build_population", "COUNTRY_SHARES"]

#: (country code, relative share of users).  18 countries, per §3.2.
COUNTRY_SHARES: tuple[tuple[str, float], ...] = (
    ("ES", 0.22), ("US", 0.18), ("DE", 0.09), ("GB", 0.08), ("IT", 0.07),
    ("FR", 0.06), ("BR", 0.05), ("PL", 0.04), ("NL", 0.035), ("BE", 0.03),
    ("FI", 0.03), ("PT", 0.025), ("GR", 0.025), ("IE", 0.02), ("SE", 0.02),
    ("CH", 0.02), ("CA", 0.02), ("AU", 0.015),
)

_INTEREST_POOL = (
    "books", "ebooks", "clothing", "shoes", "luxury-fashion", "leather-goods",
    "sunglasses", "electronics", "photography", "office", "home-improvement",
    "sports-nutrition", "cycling", "baby", "games", "hotels", "travel",
    "automobiles", "department",
)

_BROWSER_MIX = (
    ("firefox", "linux"), ("firefox", "windows"), ("chrome", "windows"),
    ("chrome", "macos"), ("safari", "macos"), ("chrome", "linux"),
)


@dataclass
class CrowdUser:
    """One beta tester: identity, location, browser, interests."""

    user_id: str
    client: UserClient
    interests: tuple[str, ...]
    #: Relative likelihood of this user issuing any given check (a few
    #: enthusiasts dominate beta usage).
    activity: float = 1.0

    @property
    def country_code(self) -> str:
        return self.client.location.country_code


def build_population(
    plan: IPAddressPlan, *, size: int = 340, seed: int = 2013
) -> list[CrowdUser]:
    """Generate the deterministic beta population."""
    if size <= 0:
        raise ValueError("population size must be positive")
    rng = stable_rng(seed, "crowd-population")
    cities = {code: cities for code, _, cities in COUNTRY_SEED}
    countries = [code for code, _ in COUNTRY_SHARES]
    weights = [share for _, share in COUNTRY_SHARES]
    users: list[CrowdUser] = []
    for index in range(size):
        country = rng.choices(countries, weights=weights, k=1)[0]
        city = rng.choice(cities[country])
        browser, os_name = rng.choice(_BROWSER_MIX)
        user_id = f"u{index:04d}"
        client = UserClient(
            name=user_id,
            location=GeoLocation(country, COUNTRY_NAMES[country], city),
            ip=plan.allocate(country, city),
            profile=profile_for(browser, os_name),
        )
        interest_count = rng.randint(2, 3)
        interests = tuple(rng.sample(_INTEREST_POOL, interest_count))
        # Pareto-ish activity: a few users check prices constantly.
        activity = rng.paretovariate(1.6)
        users.append(
            CrowdUser(
                user_id=user_id, client=client, interests=interests,
                activity=activity,
            )
        )
    return users
