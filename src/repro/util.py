"""Small shared utilities: stable hashing and seeded RNG derivation.

Python's built-in ``hash()`` of strings is salted per process, so anything
seeded through it would change between runs.  Every stochastic choice in the
simulation instead derives from :func:`stable_hash`, which is reproducible
across processes and platforms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

__all__ = ["stable_hash", "stable_rng", "stable_uniform", "stable_choice"]


def stable_hash(*parts: Any) -> int:
    """A 64-bit hash of ``parts`` that is stable across processes.

    Parts are rendered with ``repr`` and joined with an unambiguous
    separator; floats therefore hash by their exact repr.
    """
    payload = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def stable_rng(*parts: Any) -> random.Random:
    """A :class:`random.Random` seeded stably from ``parts``."""
    return random.Random(stable_hash(*parts))


def stable_uniform(low: float, high: float, *parts: Any) -> float:
    """A deterministic uniform draw in [low, high) keyed by ``parts``."""
    if high < low:
        raise ValueError("high must be >= low")
    unit = stable_hash(*parts) / 2**64
    return low + (high - low) * unit


def stable_choice(options: list, *parts: Any):
    """A deterministic choice from ``options`` keyed by ``parts``."""
    if not options:
        raise ValueError("options must be non-empty")
    return options[stable_hash(*parts) % len(options)]
