"""Deriving a robust price anchor from a highlighted DOM node.

This is the heart of the crowdsourcing trick.  §2.2 explains why naive
price extraction cannot scale: every retailer has its own template and a
page is full of decoy prices.  $heriff sidesteps template reverse-
engineering by letting the *user's eyes* find the price once; the extension
then has to describe that node well enough to find it again in copies of
the page fetched from other vantage points -- where the price *text* will
differ (other currency, other amount) and the structure may have shifted
(different promo banners, reshuffled recommendations).

:func:`derive_anchor` builds a :class:`PriceAnchor` with two redundant
locators:

* ``selector`` -- the shortest id/class/tag chain that uniquely matches the
  node in its own document (ids strongly preferred, ``:nth-of-type`` as a
  last resort per hop),
* ``node_path`` -- the raw structural path, as a fallback when the selector
  grammar cannot express a unique address.

Extraction (:mod:`repro.core.extraction`) tries the selector first, then
the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.htmlmodel.dom import Document, Element, NodePath
from repro.htmlmodel.selectors import Selector

__all__ = ["PriceAnchor", "derive_anchor", "AnchorError"]

#: Class names too generic to disambiguate anything on their own; they are
#: still used in combination with parent steps.
_MAX_CHAIN_DEPTH = 5


class AnchorError(ValueError):
    """Raised when no anchor can be derived for a node."""


@dataclass(frozen=True)
class PriceAnchor:
    """A transferable description of where the price lives in a page."""

    selector: Optional[str]
    node_path: str
    sample_text: str

    def __str__(self) -> str:
        return self.selector or self.node_path


def derive_anchor(document: Document, element: Element) -> PriceAnchor:
    """Build a :class:`PriceAnchor` for ``element`` inside ``document``.

    The element must belong to the document; its text content at highlight
    time is retained as ``sample_text`` (useful for diagnostics and for
    sanity checks during extraction).
    """
    if element.root is not document:
        raise AnchorError("element does not belong to the given document")
    selector = _derive_unique_selector(document, element)
    return PriceAnchor(
        selector=selector,
        node_path=str(element.node_path()),
        sample_text=element.text(strip=True),
    )


# ----------------------------------------------------------------------
# Selector derivation
# ----------------------------------------------------------------------
def _derive_unique_selector(document: Document, element: Element) -> Optional[str]:
    """The shortest compound chain uniquely matching ``element``."""
    # An id is king: unique by construction in sane pages, verified anyway.
    if element.id:
        candidate = f"#{element.id}"
        if _is_unique(document, candidate, element):
            return candidate

    # Build per-level descriptors from the element upwards.
    chain: list[str] = []
    node: Optional[Element] = element
    depth = 0
    while isinstance(node, Element) and depth < _MAX_CHAIN_DEPTH:
        descriptor = _describe(node)
        chain.insert(0, descriptor)
        candidate = " > ".join(chain)
        if _is_unique(document, candidate, element):
            return candidate
        # If this ancestor has an id, anchor on it and stop climbing.
        if node.id:
            chain[0] = f"#{node.id}"
            candidate = " > ".join(chain)
            if _is_unique(document, candidate, element):
                return candidate
        parent = node.parent
        node = parent if isinstance(parent, Element) else None
        depth += 1

    # Last resort: disambiguate the leaf with :nth-of-type.
    leaf_nth = _describe(element, with_nth=True)
    if len(chain) >= 1:
        chain[-1] = leaf_nth
        candidate = " > ".join(chain)
        if _is_unique(document, candidate, element):
            return candidate
    if _is_unique(document, leaf_nth, element):
        return leaf_nth
    return None


def _describe(element: Element, *, with_nth: bool = False) -> str:
    parts = [element.tag]
    for cls in element.classes:
        parts.append(f".{cls}")
    descriptor = "".join(parts)
    if with_nth:
        descriptor += f":nth-of-type({_nth_of_type(element)})"
    return descriptor


def _nth_of_type(element: Element) -> int:
    parent = element.parent
    if parent is None or not hasattr(parent, "child_elements"):
        return 1
    same = [e for e in parent.child_elements() if e.tag == element.tag]
    return same.index(element) + 1


def _is_unique(document: Document, selector_text: str, element: Element) -> bool:
    try:
        selector = Selector.parse(selector_text)
    except Exception:
        return False
    matches = selector.select(document)
    return len(matches) == 1 and matches[0] is element
