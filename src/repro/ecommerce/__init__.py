"""Simulated e-commerce world.

The paper measures live retailers; we cannot, so this package builds the
closest synthetic equivalent: a population of retailer web servers with

* per-retailer product **catalogs** (:mod:`repro.ecommerce.catalog`),
* per-retailer **pricing policies** implementing the behaviours the paper
  observes -- uniform, multiplicative-by-geo, additive-by-geo, mixed,
  per-city tiers, A/B noise, login-keyed, temporal drift
  (:mod:`repro.ecommerce.pricing`),
* country-correct **localization** of currencies and number formats, the
  paper's main measurement noise source (:mod:`repro.ecommerce.localization`),
* diverse HTML **templates** that bury the product price among recommended
  products and ads, the paper's main extraction challenge
  (:mod:`repro.ecommerce.templates`),
* embedded **third-party trackers** whose presence §4.4 quantifies
  (:mod:`repro.ecommerce.thirdparty`),
* user **personas** and login accounts for the §4.4 personal-information
  experiments (:mod:`repro.ecommerce.personas`),
* and a **world builder** that assembles the paper's retailers plus a long
  tail of honest shops into one routable simulated web
  (:mod:`repro.ecommerce.world`).
"""

from repro.ecommerce.catalog import Catalog, Product
from repro.ecommerce.localization import Locale, format_price, locale_for_country, parse_price
from repro.ecommerce.pricing import PricingContext, PricingPolicy
from repro.ecommerce.retailer import Retailer, RetailerServer
from repro.ecommerce.world import World, WorldConfig, build_world

__all__ = [
    "Catalog",
    "Locale",
    "PricingContext",
    "PricingPolicy",
    "Product",
    "Retailer",
    "RetailerServer",
    "World",
    "WorldConfig",
    "build_world",
    "format_price",
    "locale_for_country",
    "parse_price",
]
