"""Edge paths across modules: symbol-less prices, JPY, day boundaries."""

from __future__ import annotations

import pytest

from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.highlight import PriceAnchor
from repro.ecommerce.localization import LOCALES
from repro.net.clock import SECONDS_PER_DAY
from repro.net.http import HttpRequest, HttpResponse
from repro.net.transport import FunctionServer


class SymbollessShop:
    """A shop that displays bare numbers ('1.234,56') without a currency
    symbol -- the extraction must fall back to the vantage's locale."""

    def handle(self, request: HttpRequest) -> HttpResponse:
        # Serve a German-format, symbol-less price to everyone.
        return HttpResponse.html(
            "<html><body><div id='p' class='price'>1.234,56</div></body></html>"
        )


class TestCurrencyFallback:
    def test_backend_uses_vantage_locale_for_bare_numbers(self, fresh_world):
        world = fresh_world
        world.network.register("bare.example", SymbollessShop())
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        report = backend.check(CheckRequest(
            url="http://bare.example/x",
            anchor=PriceAnchor(selector="#p", node_path="/0/0/0", sample_text=""),
        ))
        by_vantage = {o.vantage: o for o in report.valid_observations()}
        # German vantage reads EUR; the locale hint also fixes the
        # separator interpretation (1.234,56 -> 1234.56).
        berlin = by_vantage["Germany - Berlin"]
        assert berlin.currency == "EUR"
        assert berlin.amount == pytest.approx(1234.56)
        # US vantage has no symbol either -> falls back to USD.
        boston = by_vantage["USA - Boston"]
        assert boston.currency == "USD"

    def test_jpy_locale_formats_integer(self):
        locale = LOCALES["JP"]
        assert locale.format_price(1234.0, decimals=0) == "¥1,234"


class TestDayBoundaries:
    def test_check_day_index_tracks_clock(self, fresh_world):
        from repro.analysis.personal import derive_anchor_for_domain

        world = fresh_world
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        domain = "www.digitalrev.com"
        anchor = derive_anchor_for_domain(world, domain)
        product = world.retailer(domain).catalog.products[0]
        url = f"http://{domain}{product.path}"

        world.clock.advance_to(max(world.clock.now, 10 * SECONDS_PER_DAY))
        early = backend.check(CheckRequest(url=url, anchor=anchor))
        world.clock.advance_to(42 * SECONDS_PER_DAY + 3600)
        later = backend.check(CheckRequest(url=url, anchor=anchor))
        assert early.day_index == 10
        assert later.day_index == 42

    def test_conversion_consistent_within_day(self, fresh_world):
        """Retailer converts USD->EUR and the backend converts back with
        the same day's mid rate: round-trip error stays inside rounding."""
        from repro.analysis.personal import derive_anchor_for_domain

        world = fresh_world
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        domain = "www.digitalrev.com"
        anchor = derive_anchor_for_domain(world, domain)
        product = world.retailer(domain).catalog.products[0]
        report = backend.check(CheckRequest(
            url=f"http://{domain}{product.path}", anchor=anchor,
        ))
        by_vantage = {o.vantage: o for o in report.valid_observations()}
        berlin = by_vantage["Germany - Berlin"]
        boston = by_vantage["USA - Boston"]
        # digitalrev charges DE 1.2x US; the EUR round-trip must land
        # within display-rounding of exactly that.
        assert berlin.usd / boston.usd == pytest.approx(1.2, abs=0.002)


class TestSpainTriplet:
    def test_browser_config_never_changes_price(self, fresh_world):
        """The paper's control: three Spain vantage points differing only
        in browser/OS must always see identical prices."""
        from repro.analysis.personal import derive_anchor_for_domain

        world = fresh_world
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        for domain in ("www.digitalrev.com", "www.guess.eu", "www.amazon.com"):
            anchor = derive_anchor_for_domain(world, domain)
            product = world.retailer(domain).catalog.products[1]
            report = backend.check(CheckRequest(
                url=f"http://{domain}{product.path}", anchor=anchor,
            ))
            spain = [
                obs.amount for obs in report.valid_observations()
                if obs.vantage.startswith("Spain")
            ]
            assert len(spain) == 3
            assert len(set(spain)) == 1, domain
