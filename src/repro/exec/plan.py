"""Shard planning: deterministic ownership of a batch's checks.

The unit of shard ownership is the **retailer**.  Everything that makes
two checks against one shop interact -- the vantage fleet's session
cookies for that domain, the server's request counter (part of the
pricing nonce), its render memo -- is keyed by domain, while checks
against different shops share nothing (per-request latency/loss draws,
burst-clock isolation; see ``docs/ARCHITECTURE.md``).  A planner
therefore assigns every (retailer, product) target to the shard that
owns its retailer; because archives and reports are merged back in plan
order, **any** retailer-respecting partition produces byte-identical
output, which frees the planner to chase wall clock instead of safety.

Two planners implement the ``partition_batch(backend, scheduled)`` seam:

* :class:`ShardPlan` -- the stable-hash fallback: shard =
  ``hash(domain) % workers``.  Deterministic and cheap, but cost-blind:
  one shard can end up with every live-only retailer while another owns
  nothing but memo hits.
* :class:`CostAwarePlanner` -- the default: predicts each retailer's
  cost for *this* batch (live fan-outs are ~:data:`LIVE_CHECK_COST`;
  repeats of an already-seen ``(url, day)`` burst on a memoizable
  retailer are ~:data:`MEMO_HIT_COST`) and bin-packs retailers onto
  shards so predicted shard costs equalize.

:class:`ExecConfig` is the user-facing knob: ``workers``, ``mode``, and
``planner`` travel from the CLI / :func:`repro.crawler.run_crawl` /
:func:`repro.crowd.run_campaign` down to an executor instance.
``workers=0`` and ``mode="auto"`` defer the choice to
:meth:`ExecConfig.resolve`, which sizes the pool from ``os.cpu_count()``
and picks the mode from the world's predicted live-work share.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro.net.clock import SECONDS_PER_DAY
from repro.net.urls import URL
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck, SheriffBackend
    from repro.ecommerce.world import World

__all__ = [
    "CostAwarePlanner",
    "ExecConfig",
    "ExecError",
    "LIVE_CHECK_COST",
    "MEMO_HIT_COST",
    "PLANNERS",
    "ShardPlan",
    "make_planner",
    "predicted_batch_cost",
]

_MODES = ("local", "process", "auto")

#: Planner names accepted by :class:`ExecConfig` / the CLI's ``--planner``.
PLANNERS = ("cost", "stable")

#: Relative cost of a full live fan-out (render + serialize + archive +
#: extract, times the fleet) vs replaying a memo hit.  Calibrated from
#: ``benchmarks/BENCH_pipeline.json``: a memoized campaign day runs
#: ~20x faster per check than a live one.  Only the *ratio* matters --
#: the planner equalizes relative shard loads, never absolute seconds.
LIVE_CHECK_COST = 20.0
MEMO_HIT_COST = 1.0

logger = logging.getLogger("repro.exec")


class ExecError(RuntimeError):
    """Raised when a shard executor cannot honor its determinism contract."""


def _check_costs(
    backend: "SheriffBackend",
    scheduled: Sequence["ScheduledCheck"],
):
    """Yield ``(domain, predicted cost)`` per scheduled check.

    The one pricing rule shared by the cost planner and the supervisor's
    hang deadlines: a retailer the burst memo will serve pays
    :data:`LIVE_CHECK_COST` only for the first check of each
    ``(url, day)`` burst and :data:`MEMO_HIT_COST` for repeats; everyone
    else pays full price every time.
    """
    cache = backend.burst_cache
    seen: set[tuple[str, str, int]] = set()
    for sched in scheduled:
        host = URL.parse(sched.request.url).host
        if cache.predicts_hits(backend, host):
            burst = (host, sched.request.url,
                     int(sched.start_ts // SECONDS_PER_DAY))
            if burst in seen:
                yield host, MEMO_HIT_COST
                continue
            seen.add(burst)
        yield host, LIVE_CHECK_COST


def predicted_batch_cost(
    backend: "SheriffBackend",
    scheduled: Sequence["ScheduledCheck"],
) -> float:
    """Total predicted cost of a batch slice (any planner's shard).

    :class:`~repro.exec.process.ProcessExecutor` scales its per-shard
    hang deadline by this number, so a shard full of live fan-outs gets
    proportionally more wall clock than one replaying memo hits before
    the supervisor declares its worker hung.
    """
    return sum(cost for _, cost in _check_costs(backend, scheduled))


class ShardPlan:
    """Stable partition of checks across ``workers`` shards by retailer."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("a shard plan needs at least one worker")
        self.workers = workers

    def shard_of(self, domain: str) -> int:
        """The shard that owns ``domain``.

        Derived from a process- and platform-stable hash, so coordinator
        and workers (or two runs months apart) always agree.
        """
        return stable_hash("shard", domain.lower()) % self.workers

    def partition(
        self, scheduled: Sequence["ScheduledCheck"]
    ) -> list[list["ScheduledCheck"]]:
        """Split schedule entries into per-shard slices.

        Entries keep their submission order inside each shard, which
        preserves the per-domain request sequence (and with it cookie and
        nonce evolution) exactly as the sequential loop would produce it.
        """
        shards: list[list["ScheduledCheck"]] = [[] for _ in range(self.workers)]
        for sched in scheduled:
            host = URL.parse(sched.request.url).host
            shards[self.shard_of(host)].append(sched)
        return shards

    def partition_batch(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
    ) -> list[list["ScheduledCheck"]]:
        """The planner seam executors call; the stable hash ignores cost."""
        return self.partition(scheduled)

    def __repr__(self) -> str:
        return f"ShardPlan(workers={self.workers})"


class CostAwarePlanner:
    """Bin-pack retailers onto shards by predicted batch cost.

    Per batch, every retailer's checks are priced from two facts the
    coordinator already knows:

    * **class** -- a retailer the burst memo will serve (reachable
      retailer server, pure :meth:`~repro.ecommerce.retailer.
      RetailerServer.signature_profile`, not demoted, memo enabled) pays
      :data:`LIVE_CHECK_COST` only for the *first* check of each
      ``(url, day)`` burst; repeats replay at :data:`MEMO_HIT_COST`.
      Live-only retailers pay full price every time.
    * **volume** -- how many scheduled checks the batch actually sends
      each retailer.

    Retailers are then assigned largest-cost-first to the least-loaded
    shard (LPT bin packing), with deterministic tie-breaks (domain name,
    then lowest shard index), so coordinator runs agree across machines.
    Byte identity never depends on the assignment -- merge-in-plan-order
    guarantees it for any retailer-respecting partition -- so a bad cost
    prediction costs time, never correctness.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("a shard plan needs at least one worker")
        self.workers = workers

    # ------------------------------------------------------------------
    def predicted_costs(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
    ) -> dict[str, float]:
        """domain -> predicted cost of this batch's checks against it."""
        costs: dict[str, float] = {}
        for host, cost in _check_costs(backend, scheduled):
            costs[host] = costs.get(host, 0.0) + cost
        return costs

    def assign(self, costs: dict[str, float]) -> dict[str, int]:
        """domain -> shard, equalizing predicted per-shard cost (LPT)."""
        loads = [0.0] * self.workers
        assignment: dict[str, int] = {}
        for domain in sorted(costs, key=lambda d: (-costs[d], d)):
            shard = min(range(self.workers), key=lambda i: (loads[i], i))
            assignment[domain] = shard
            loads[shard] += costs[domain]
        return assignment

    def partition_batch(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
    ) -> list[list["ScheduledCheck"]]:
        """Split schedule entries into cost-balanced per-shard slices.

        Entries keep their submission order inside each shard (the same
        per-domain sequence guarantee as :meth:`ShardPlan.partition`).
        """
        assignment = self.assign(self.predicted_costs(backend, scheduled))
        shards: list[list["ScheduledCheck"]] = [[] for _ in range(self.workers)]
        for sched in scheduled:
            host = URL.parse(sched.request.url).host
            shards[assignment[host]].append(sched)
        return shards

    def __repr__(self) -> str:
        return f"CostAwarePlanner(workers={self.workers})"


def make_planner(name: str, workers: int):
    """Instantiate the planner ``name`` ("cost" or "stable") for ``workers``."""
    if name == "cost":
        return CostAwarePlanner(workers)
    if name == "stable":
        return ShardPlan(workers)
    raise ValueError(f"planner must be one of {PLANNERS}")


@dataclass(frozen=True)
class ExecConfig:
    """How a crawl/campaign executes its fan-out batches.

    ``workers=1`` with ``mode="local"`` is the sequential baseline (no
    executor object at all); higher worker counts shard the batch.  Modes:

    * ``"local"`` -- :class:`~repro.exec.local.LocalExecutor`: shards run
      one after another in this process.  Zero overhead, exercises the
      exact partition/merge path; the default and the test baseline.
    * ``"process"`` -- :class:`~repro.exec.process.ProcessExecutor`:
      shards run in parallel worker processes that rebuild the world from
      its :class:`~repro.ecommerce.world.WorldSpec`.
    * ``"auto"`` -- decided per world by :meth:`resolve`.

    ``workers=0`` means "size the pool automatically" (``os.cpu_count()``).
    ``planner`` selects how batches shard: ``"cost"`` (cost-aware bin
    packing, the default) or ``"stable"`` (hash-by-domain fallback).
    The planner affects wall clock only -- bytes are identical under
    either, and the checkpoint fingerprint excludes it, so a resumed run
    may switch planners freely.
    """

    workers: int = 1
    mode: str = "local"
    planner: str = "cost"
    #: How many times the supervisor may respawn the worker of any one
    #: shard before quarantining the shard to inline execution (process
    #: mode only; see :meth:`ProcessExecutor.supervision_stats`).
    max_worker_restarts: int = 3

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 1, or 0 for auto")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if self.planner not in PLANNERS:
            raise ValueError(f"planner must be one of {PLANNERS}")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")

    # ------------------------------------------------------------------
    def resolve(self, world: "World") -> "ExecConfig":
        """A concrete config: ``workers=0`` / ``mode="auto"`` decided.

        Auto workers is ``os.cpu_count()``.  Auto mode weighs the world's
        predicted live-work share: live-only retailers (stateful pricing,
        login) re-run the full fan-out on every check, which is the
        parallelizable heavy work, so a fleet dominated by them (weighted
        share >= 0.5 of expected traffic) crosses into ``"process"``;
        a memo-friendly fleet stays ``"local"``, where replaying hits in
        one process beats paying any boundary at all.  The decision is
        logged on the ``repro.exec`` logger.
        """
        if self.workers >= 1 and self.mode != "auto":
            return self
        workers = self.workers or (os.cpu_count() or 1)
        mode = self.mode
        if mode == "auto":
            live_share = _live_work_share(world)
            mode = "process" if workers >= 2 and live_share >= 0.5 else "local"
            logger.info(
                "exec auto: workers=%d mode=%s (cpu_count=%s, "
                "predicted live-work share %.2f)",
                workers, mode, os.cpu_count(), live_share,
            )
        else:
            logger.info(
                "exec auto: workers=%d mode=%s (cpu_count=%s)",
                workers, mode, os.cpu_count(),
            )
        return replace(self, workers=workers, mode=mode)

    def create(self, world: "World"):
        """Build the executor this config describes (None = run inline)."""
        config = self.resolve(world)
        if config.mode == "local" and config.workers == 1:
            return None
        plan = make_planner(config.planner, config.workers)
        if config.mode == "local":
            from repro.exec.local import LocalExecutor

            return LocalExecutor(config.workers, plan=plan)
        from repro.exec.process import ProcessExecutor

        return ProcessExecutor(
            world, config.workers, plan=plan,
            max_restarts=config.max_worker_restarts,
        )


def _live_work_share(world: "World") -> float:
    """Expected fraction of traffic that must run the live fan-out.

    Weighted by :meth:`~repro.ecommerce.world.World.crowd_weights` where
    known (crawl-only retailers count once): a retailer whose
    :meth:`~repro.ecommerce.retailer.RetailerServer.signature_profile`
    is ``None`` is live-only, and long-tail domains (not retailer
    servers) always are.
    """
    weights = world.crowd_weights()
    total = live = 0.0
    for domain, server in world.servers.items():
        weight = weights.get(domain, 1.0)
        total += weight
        if server.signature_profile() is None:
            live += weight
    for domain in world.long_tail:
        weight = weights.get(domain, 0.6)
        total += weight
        live += weight
    return live / total if total else 1.0
