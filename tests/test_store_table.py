"""Unit tests for the columnar report store (repro.store)."""

from __future__ import annotations

import pytest

from repro.core.reports import PriceCheckReport, VantageObservation
from repro.io import report_to_dict
from repro.store import ReportTable, StringPool, TableSlice, as_table_slice


def obs(vantage: str = "USA - Boston", usd=10.0, *, ok=True, **kwargs):
    defaults = dict(
        vantage=vantage, country_code="US", city="Boston", ok=ok,
        raw_text=f"${usd}" if ok else "", amount=usd if ok else None,
        currency="USD" if ok else None, usd=usd if ok else None,
        method="selector" if ok else "", error="" if ok else "boom",
    )
    defaults.update(kwargs)
    return VantageObservation(**defaults)


def make_report(i: int = 0, *, domain="d.example", url=None, day=3,
                observations=None, guard=1.02) -> PriceCheckReport:
    return PriceCheckReport(
        check_id=f"chk{i:07d}",
        url=url or f"http://{domain}/p/{i}",
        domain=domain,
        day_index=day,
        timestamp=day * 86400.0 + i,
        observations=observations if observations is not None else [
            obs("USA - Boston", 10.0),
            obs("Finland - Tampere", 12.8),
            obs("UK - London", ok=False),
        ],
        guard_threshold=guard,
        origin="crawler",
    )


class TestStringPool:
    def test_interning_is_stable_and_deduplicating(self):
        pool = StringPool()
        a = pool.intern("x")
        b = pool.intern("y")
        assert pool.intern("x") == a
        assert (a, b) == (0, 1)
        assert pool.value(a) == "x"
        assert pool.id_of("y") == b
        assert pool.id_of("missing") is None
        assert len(pool) == 2

    def test_seeded_pool_preserves_order(self):
        pool = StringPool(["a", "b", "a"])
        assert pool.values == ["a", "b"]


class TestReportTable:
    def test_append_and_materialize_roundtrip(self):
        table = ReportTable()
        reports = [make_report(i, day=i) for i in range(3)]
        for report in reports:
            table.append(report)
        assert len(table) == 3
        assert table.n_observations == 9
        for i, original in enumerate(reports):
            assert report_to_dict(table.report(i)) == report_to_dict(original)

    def test_materialized_rows_are_cached(self):
        table = ReportTable()
        table.append(make_report())
        assert table.report(0) is table.report(0)

    def test_derived_columns_match_dataclass_properties(self):
        table = ReportTable()
        report = make_report()
        i = table.append(report)
        assert table.n_valid[i] == len(report.valid_observations())
        assert table.min_usd[i] == report.min_usd
        assert table.max_usd[i] == report.max_usd
        assert table.ratio[i] == report.ratio
        assert table.row_has_variation(i) == report.has_variation

    def test_zero_usd_counts_as_valid(self):
        """Regression: usd == 0.0 is a price, not a missing value."""
        report = make_report(observations=[obs(usd=0.0), obs(usd=5.0)])
        assert len(report.valid_observations()) == 2
        assert report.min_usd == 0.0
        assert report.ratio is None  # non-positive minimum: no ratio
        table = ReportTable()
        i = table.append(report)
        assert table.n_valid[i] == 2
        assert table.min_usd[i] == 0.0
        assert table.ratio[i] is None

    def test_all_failed_observations(self):
        table = ReportTable()
        i = table.append(make_report(observations=[obs(ok=False)]))
        assert table.n_valid[i] == 0
        assert table.min_usd[i] is None
        assert table.ratio[i] is None
        assert not table.row_has_variation(i)

    def test_ratios_by_vantage_matches_dataclass(self):
        table = ReportTable()
        report = make_report()
        i = table.append(report)
        named = {
            table.vantages.value(vid): ratio
            for vid, ratio in table.ratios_by_vantage(i)
        }
        assert named == report.ratios_by_vantage()

    def test_set_guard_updates_column_and_cached_rows(self):
        table = ReportTable()
        table.append(make_report(guard=1.0))
        row = table.report(0)  # materialize first
        table.set_guard(1.5, [0])
        assert table.guard[0] == 1.5
        assert row.guard_threshold == 1.5  # cached row kept in sync
        assert table.report(0).guard_threshold == 1.5

    def test_index_cache_invalidated_by_append(self):
        table = ReportTable()
        table.append(make_report(0, domain="a.example", day=0))
        first = table.rows_by_domain()
        assert list(first.values()) == [[0]]
        assert table.rows_by_domain() is first  # cached at same version
        table.append(make_report(1, domain="b.example", day=1))
        second = table.rows_by_domain()
        assert second is not first
        assert len(second) == 2
        assert table.day_values() == [0, 1]

    def test_columns_roundtrip(self):
        table = ReportTable()
        for i in range(4):
            table.append(make_report(i, domain=f"s{i % 2}.example", day=i))
        again = ReportTable.from_columns(*table.to_columns())
        assert len(again) == len(table)
        for i in range(len(table)):
            assert report_to_dict(again.report(i)) == report_to_dict(table.report(i))
        assert again.n_valid == table.n_valid
        assert again.ratio == table.ratio

    def test_from_columns_validates_shapes(self):
        table = ReportTable()
        table.append(make_report())
        pools, reports, observations = table.to_columns()
        broken = dict(reports, day=[])
        with pytest.raises(ValueError):
            ReportTable.from_columns(pools, broken, observations)
        broken = dict(reports, obs_start=[0, 99])
        with pytest.raises(ValueError):
            ReportTable.from_columns(pools, broken, observations)

    def test_from_columns_rejects_out_of_pool_ids(self):
        """Corrupted id columns must fail loudly, not silently wrap to
        the wrong pooled string."""
        table = ReportTable()
        table.append(make_report())
        pools, reports, observations = table.to_columns()
        for column, section in (("domain", "reports"), ("url", "reports"),
                                ("vantage", "observations")):
            data = {"reports": dict(reports), "observations": dict(observations)}
            for bad_id in (-2, 99):
                data[section][column] = [bad_id] * len(data[section][column])
                with pytest.raises(ValueError):
                    ReportTable.from_columns(
                        pools, data["reports"], data["observations"]
                    )
        # The currency sentinel (-1 = no currency) stays legal.
        ok = dict(observations, currency=[-1] * len(observations["currency"]))
        assert len(ReportTable.from_columns(pools, reports, ok)) == 1

    def test_report_rejects_out_of_range_row(self):
        table = ReportTable()
        table.append(make_report())
        with pytest.raises(IndexError):
            table.report(1)
        with pytest.raises(IndexError):
            table.report(-1)


class TestTableSlice:
    def test_sequence_protocol(self):
        table = ReportTable()
        for i in range(5):
            table.append(make_report(i))
        sliced = TableSlice(table)
        assert len(sliced) == 5
        assert sliced[0].check_id == "chk0000000"
        assert [r.check_id for r in sliced] == [f"chk{i:07d}" for i in range(5)]
        sub = sliced[1:3]
        assert isinstance(sub, TableSlice)
        assert [r.check_id for r in sub] == ["chk0000001", "chk0000002"]

    def test_as_table_slice_dispatch(self):
        table = ReportTable()
        table.append(make_report())
        assert as_table_slice(TableSlice(table)) is not None
        assert as_table_slice(table) is not None
        assert as_table_slice([make_report()]) is None
        assert as_table_slice(table).rows == range(1)

    def test_empty_slice(self):
        sliced = TableSlice(ReportTable())
        assert len(sliced) == 0
        assert list(sliced) == []
