"""Third-party trackers embedded in retailer pages.

§4.4 of the paper surveys which third parties are present on the studied
retailers -- they are the plumbing through which cross-site personal
information could flow into pricing:

    Google analytics 95%, DoubleClick 65%, Facebook widgets 80%,
    Pinterest 45%, Twitter 40%.

Retailers deterministically embed a tracker set drawn with those
probabilities; the analysis stage recovers the percentages by scanning the
archived pages (not by reading this table), so the §4.4 numbers are a real
measurement of the simulated web.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import stable_hash

__all__ = ["ThirdParty", "TRACKER_CENSUS", "trackers_for_retailer"]


@dataclass(frozen=True)
class ThirdParty:
    """One embeddable third-party service."""

    name: str
    domain: str
    kind: str  # "analytics" | "ads" | "social"
    adoption: float  # fraction of retailers embedding it (paper §4.4)

    def script_url(self) -> str:
        """The embed URL retailer pages reference for this service."""
        return f"http://{self.domain}/embed.js"


#: The census the paper reports, as ground-truth adoption probabilities.
TRACKER_CENSUS: tuple[ThirdParty, ...] = (
    ThirdParty("Google Analytics", "www.google-analytics.com", "analytics", 0.95),
    ThirdParty("DoubleClick", "ad.doubleclick.net", "ads", 0.65),
    ThirdParty("Facebook", "connect.facebook.net", "social", 0.80),
    ThirdParty("Pinterest", "assets.pinterest.com", "social", 0.45),
    ThirdParty("Twitter", "platform.twitter.com", "social", 0.40),
)


def trackers_for_retailer(domain: str, *, seed: int = 0) -> tuple[ThirdParty, ...]:
    """The deterministic tracker set embedded by ``domain``.

    Each tracker is an independent coin flip keyed on (seed, domain,
    tracker), with the paper's adoption rate as the probability, so the
    population-level frequencies converge to §4.4's numbers.
    """
    chosen = []
    for tracker in TRACKER_CENSUS:
        draw = stable_hash(seed, domain, tracker.domain, "adopt") / 2**64
        if draw < tracker.adoption:
            chosen.append(tracker)
    return tuple(chosen)
