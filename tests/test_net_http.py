"""HTTP message model tests."""

from __future__ import annotations

import pytest

from repro.net.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    HttpStatus,
    SetCookie,
    parse_cookie_header,
)
from repro.net.urls import URL


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_add_preserves_multiple(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("set-cookie") == ["a=1", "b=2"]
        assert headers.get("Set-Cookie") == "a=1"

    def test_set_replaces_all(self):
        headers = Headers([("X", "1"), ("x", "2")])
        headers.set("X", "3")
        assert headers.get_all("x") == ["3"]

    def test_remove(self):
        headers = Headers([("A", "1"), ("B", "2")])
        headers.remove("a")
        assert "A" not in headers
        assert "B" in headers

    def test_iteration_order(self):
        items = [("A", "1"), ("B", "2"), ("A", "3")]
        assert list(Headers(items)) == items

    def test_copy_independent(self):
        original = Headers([("A", "1")])
        clone = original.copy()
        clone.set("A", "9")
        assert original.get("A") == "1"

    def test_len_and_eq(self):
        assert len(Headers([("A", "1")])) == 1
        assert Headers([("A", "1")]) == Headers([("A", "1")])


class TestHttpRequest:
    def test_method_uppercased(self):
        req = HttpRequest(method="get", url=URL.parse("http://h/"))
        assert req.method == "GET"

    def test_unsupported_method(self):
        with pytest.raises(ValueError):
            HttpRequest(method="DELETE", url=URL.parse("http://h/"))

    def test_string_url_coerced(self):
        req = HttpRequest(method="GET", url="http://h/p")
        assert isinstance(req.url, URL)
        assert req.url.path == "/p"

    def test_cookie_accessor(self):
        headers = Headers([("Cookie", "session=abc; auth=alice")])
        req = HttpRequest(method="GET", url="http://h/", headers=headers)
        assert req.cookies == {"session": "abc", "auth": "alice"}

    def test_header_accessors(self):
        headers = Headers([
            ("User-Agent", "UA/1"), ("Accept-Language", "fi-FI"),
            ("Referer", "http://r/"),
        ])
        req = HttpRequest(method="GET", url="http://h/", headers=headers)
        assert req.user_agent == "UA/1"
        assert req.accept_language == "fi-FI"
        assert req.referer == "http://r/"


class TestSetCookie:
    def test_roundtrip(self):
        cookie = SetCookie("session", "xyz", path="/shop", max_age=60,
                           secure=True, http_only=True)
        parsed = SetCookie.parse(cookie.to_header())
        assert parsed == cookie

    def test_parse_minimal(self):
        cookie = SetCookie.parse("a=b")
        assert cookie.name == "a" and cookie.value == "b"
        assert cookie.path == "/"
        assert cookie.max_age is None

    def test_parse_bad(self):
        with pytest.raises(ValueError):
            SetCookie.parse("no-equals-sign")

    def test_bad_max_age_ignored(self):
        cookie = SetCookie.parse("a=b; Max-Age=soon")
        assert cookie.max_age is None


class TestCookieHeaderParsing:
    def test_parse(self):
        assert parse_cookie_header("a=1; b=2") == {"a": "1", "b": "2"}

    def test_skips_malformed(self):
        assert parse_cookie_header("a=1; garbage; b=2") == {"a": "1", "b": "2"}


class TestHttpResponse:
    def test_html_constructor(self):
        resp = HttpResponse.html("<p>x</p>")
        assert resp.ok
        assert resp.content_type.startswith("text/html")
        assert resp.headers.get("Content-Length") == "8"

    def test_not_found(self):
        resp = HttpResponse.not_found()
        assert resp.status == HttpStatus.NOT_FOUND
        assert not resp.ok

    def test_redirect(self):
        resp = HttpResponse.redirect("/next")
        assert resp.status.is_redirect
        assert resp.headers.get("Location") == "/next"
        permanent = HttpResponse.redirect("/next", permanent=True)
        assert permanent.status == HttpStatus.MOVED_PERMANENTLY

    def test_set_cookies_accessor(self):
        resp = HttpResponse.html("x")
        resp.headers.add("Set-Cookie", "a=1")
        resp.headers.add("Set-Cookie", "bad")
        resp.headers.add("Set-Cookie", "b=2; Path=/p")
        cookies = resp.set_cookies
        assert [(c.name, c.value) for c in cookies] == [("a", "1"), ("b", "2")]

    def test_status_helpers(self):
        assert HttpStatus.OK.is_success
        assert not HttpStatus.NOT_FOUND.is_success
        assert HttpStatus.FOUND.is_redirect
        assert not HttpStatus.OK.is_redirect
