"""Common result type for figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """A regenerated figure/table in row form.

    ``rows`` are ordered (label, value...) tuples mirroring the figure's
    x-axis; ``checks`` are named boolean shape assertions ("who wins, by
    roughly what factor, where crossovers fall"); ``paper_claim`` quotes
    what the paper reports so EXPERIMENTS.md can juxtapose the two.
    """

    figure_id: str
    title: str
    paper_claim: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def add_row(self, *values: Any) -> None:
        """Append one figure row; width-checked against ``columns``."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def check(self, name: str, passed: bool) -> None:
        """Record one named shape assertion."""
        self.checks[name] = bool(passed)

    # ------------------------------------------------------------------
    def format_text(self, *, max_rows: int = 40) -> str:
        """Render as a monospace block (the harness's 'figure')."""
        out = [f"== {self.figure_id}: {self.title} =="]
        out.append(f"paper: {self.paper_claim}")
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows))
            if self.rows
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        out.append(header)
        out.append("-" * len(header))
        for row in self.rows[:max_rows]:
            out.append(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        if len(self.rows) > max_rows:
            out.append(f"... ({len(self.rows) - max_rows} more rows)")
        for name, passed in self.checks.items():
            out.append(f"[{'PASS' if passed else 'FAIL'}] {name}")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
