"""Crawl planning and execution tests."""

from __future__ import annotations

import pytest

from repro.core.backend import SheriffBackend
from repro.crawler.crawl import CrawlConfig, run_crawl
from repro.crawler.plan import CrawlPlan, PlanError, build_plan, select_domains_from_crowd
from repro.crawler.records import CrawlDataset
from repro.crowd.campaign import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def small_setup():
    world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=5))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    return world, backend


class TestPlan:
    def test_plan_covers_requested_domains(self, small_setup):
        world, _ = small_setup
        plan = build_plan(world, domains=world.crawled_domains[:5],
                          products_per_retailer=6)
        assert plan.domains == world.crawled_domains[:5]
        assert all(len(t.product_urls) == 6 for t in plan.targets)
        assert plan.total_product_urls == 30

    def test_product_urls_resolve(self, small_setup):
        world, _ = small_setup
        plan = build_plan(world, domains=["www.digitalrev.com"],
                          products_per_retailer=5)
        target = plan.targets[0]
        vantage = world.vantage_points[0]
        for url in target.product_urls:
            response = vantage.fetch(world.network, url)
            assert response.ok

    def test_anchor_works_for_each_target(self, small_setup):
        from repro.core.extraction import extract_price

        world, _ = small_setup
        plan = build_plan(world, domains=world.crawled_domains[:4],
                          products_per_retailer=3)
        vantage = world.vantage_points[2]
        for target in plan.targets:
            response = vantage.fetch(world.network, target.product_urls[0])
            extracted = extract_price(response.body, target.anchor)
            assert extracted.ok, (target.domain, extracted.error)

    def test_unknown_domain_rejected(self, small_setup):
        world, _ = small_setup
        with pytest.raises(PlanError):
            build_plan(world, domains=["nope.example"], products_per_retailer=3)

    def test_needs_domains_or_crowd(self, small_setup):
        world, _ = small_setup
        with pytest.raises(PlanError):
            build_plan(world)

    def test_products_cap_respected(self, small_setup):
        world, _ = small_setup
        domain = "www.digitalrev.com"
        catalog_size = len(world.retailer(domain).catalog)
        plan = build_plan(world, domains=[domain], products_per_retailer=10_000)
        # Index listing is capped, so we get min(listing, catalog).
        assert len(plan.targets[0].product_urls) <= max(250, catalog_size)

    def test_invalid_product_count(self, small_setup):
        world, _ = small_setup
        with pytest.raises(PlanError):
            build_plan(world, domains=["www.amazon.com"], products_per_retailer=0)

    def test_selection_from_crowd(self, small_setup):
        world, backend = small_setup
        crowd = run_campaign(
            world, backend, CampaignConfig(n_checks=80, population_size=40, seed=3)
        )
        selected = select_domains_from_crowd(
            crowd, min_flagged=1, max_retailers=21,
            carry_overs=["www.homedepot.com"],
        )
        assert selected
        assert len(selected) <= 21
        assert "www.homedepot.com" in selected
        # Ordered by flagged count descending (head = biggest discriminators).
        counts = crowd.variation_counts()
        head = selected[:3]
        assert all(counts.get(d, 0) >= 1 or d == "www.homedepot.com" for d in head)


class TestCrawl:
    def test_daily_structure(self, small_setup):
        world, backend = small_setup
        plan = build_plan(world, domains=world.crawled_domains[:3],
                          products_per_retailer=4)
        dataset = run_crawl(world, backend, plan, CrawlConfig(days=2, start_day=200))
        assert len(dataset) == 2 * 3 * 4
        assert dataset.day_indices == [200, 201]
        assert set(dataset.domains) == set(world.crawled_domains[:3])

    def test_extracted_price_accounting(self, small_setup):
        world, backend = small_setup
        plan = build_plan(world, domains=["www.digitalrev.com"],
                          products_per_retailer=3)
        dataset = run_crawl(world, backend, plan, CrawlConfig(days=1, start_day=210))
        assert dataset.n_extracted_prices == 3 * 14

    def test_by_product_groups_days(self, small_setup):
        world, backend = small_setup
        plan = build_plan(world, domains=["www.guess.eu"], products_per_retailer=2)
        dataset = run_crawl(world, backend, plan, CrawlConfig(days=3, start_day=220))
        by_product = dataset.by_product()
        assert len(by_product) == 2
        assert all(len(reports) == 3 for reports in by_product.values())

    def test_summary(self, small_setup):
        world, backend = small_setup
        plan = build_plan(world, domains=["www.guess.eu"], products_per_retailer=2)
        dataset = run_crawl(world, backend, plan, CrawlConfig(days=1, start_day=230))
        summary = dataset.summary()
        assert summary["retailers"] == 1
        assert summary["reports"] == 2
        assert summary["products"] == 2

    def test_empty_plan_rejected(self, small_setup):
        world, backend = small_setup
        with pytest.raises(ValueError):
            run_crawl(world, backend, CrawlPlan(targets=[]), CrawlConfig(days=1))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CrawlConfig(days=0)
        with pytest.raises(ValueError):
            CrawlConfig(start_day=-1)
        with pytest.raises(ValueError):
            CrawlConfig(pacing_seconds=-0.1)
