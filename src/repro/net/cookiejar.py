"""Client-side cookie storage.

Cookies carry the personal-information signals the paper studies: login
sessions (the Kindle ebook experiment of Fig. 10), trained personas
(affluent vs budget), and server-assigned A/B buckets (a noise source the
methodology must suppress).  The jar is per-client, host-scoped, and honors
``Path`` and ``Max-Age`` against the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.http import HttpResponse, SetCookie
from repro.net.urls import URL

__all__ = ["CookieJar", "StoredCookie"]


@dataclass
class StoredCookie:
    """A cookie at rest in a jar."""

    host: str
    name: str
    value: str
    path: str = "/"
    expires_at: Optional[float] = None  # virtual time; None = session cookie
    secure: bool = False

    def matches(self, url: URL, now: float) -> bool:
        """True if this cookie should be sent on a request to ``url``."""
        if self.host != url.host:
            return False
        if self.expires_at is not None and now >= self.expires_at:
            return False
        if self.secure and url.scheme != "https":
            return False
        path = self.path if self.path.endswith("/") else self.path + "/"
        target = url.path if url.path.endswith("/") else url.path + "/"
        return target.startswith(path) or url.path == self.path


class CookieJar:
    """Host-scoped cookie store for one simulated client."""

    def __init__(self) -> None:
        self._cookies: dict[tuple[str, str, str], StoredCookie] = {}

    def __len__(self) -> int:
        return len(self._cookies)

    # ------------------------------------------------------------------
    def set(self, host: str, cookie: SetCookie, *, now: float = 0.0) -> None:
        """Store a ``Set-Cookie`` received from ``host``.

        ``Max-Age=0`` (or negative) deletes the cookie, per RFC 6265.
        """
        key = (host, cookie.name, cookie.path)
        if cookie.max_age is not None and cookie.max_age <= 0:
            self._cookies.pop(key, None)
            return
        expires = None if cookie.max_age is None else now + cookie.max_age
        self._cookies[key] = StoredCookie(
            host=host,
            name=cookie.name,
            value=cookie.value,
            path=cookie.path,
            expires_at=expires,
            secure=cookie.secure,
        )

    def update_from_response(self, url: URL, response: HttpResponse, *, now: float = 0.0) -> None:
        """Ingest every ``Set-Cookie`` header of ``response``."""
        for cookie in response.set_cookies:
            self.set(url.host, cookie, now=now)

    def put(self, host: str, name: str, value: str, *, path: str = "/") -> None:
        """Directly install a cookie (used to inject login sessions)."""
        self._cookies[(host, name, path)] = StoredCookie(
            host=host, name=name, value=value, path=path
        )

    def get(self, host: str, name: str) -> Optional[str]:
        """Value of cookie ``name`` for ``host`` ignoring path, or None."""
        for (h, n, _), cookie in self._cookies.items():
            if h == host and n == name:
                return cookie.value
        return None

    def clear(self, host: Optional[str] = None) -> None:
        """Forget all cookies, or only those of ``host``."""
        if host is None:
            self._cookies.clear()
            return
        self._cookies = {
            key: cookie for key, cookie in self._cookies.items() if key[0] != host
        }

    # ------------------------------------------------------------------
    # State transfer (the shard executors' session hand-off)
    # ------------------------------------------------------------------
    def snapshot(self, hosts: Optional[set[str]] = None) -> list[dict]:
        """Export cookies as picklable dicts, optionally for ``hosts`` only.

        Together with :meth:`restore` this moves per-domain session state
        between a coordinator and a shard worker without shipping the jar
        object itself.  Insertion order is preserved.
        """
        return [
            {
                "host": c.host,
                "name": c.name,
                "value": c.value,
                "path": c.path,
                "expires_at": c.expires_at,
                "secure": c.secure,
            }
            for c in self._cookies.values()
            if hosts is None or c.host in hosts
        ]

    def restore(self, snapshot: list[dict]) -> None:
        """Install cookies exported by :meth:`snapshot` (upserting by key)."""
        for item in snapshot:
            cookie = StoredCookie(**item)
            self._cookies[(cookie.host, cookie.name, cookie.path)] = cookie

    # ------------------------------------------------------------------
    def header_for(self, url: URL, *, now: float = 0.0) -> Optional[str]:
        """The ``Cookie:`` header value for a request to ``url``."""
        sendable = [
            cookie
            for cookie in self._cookies.values()
            if cookie.matches(url, now)
        ]
        if not sendable:
            return None
        # Longest path first, then by name for determinism.
        sendable.sort(key=lambda c: (-len(c.path), c.name))
        return "; ".join(f"{c.name}={c.value}" for c in sendable)
