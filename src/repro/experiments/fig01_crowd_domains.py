"""Fig. 1: domains with the highest number of requests showing price
differences, in the crowdsourced dataset."""

from __future__ import annotations

from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

#: The head of the paper's Fig. 1 ordering (most-flagged first).
PAPER_TOP_DOMAINS = (
    "www.amazon.com",
    "www.hotels.com",
    "store.steampowered.com",
    "www.misssixty.com",
    "www.energie.it",
)


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 1 from the crowdsourced dataset."""
    result = FigureResult(
        figure_id="FIG1",
        title="Domains with the highest number of requests with price differences",
        paper_claim=(
            "a diverse head led by amazon/hotels/steam with counts spanning "
            "roughly 2-50 on a log axis; niche and local shops appear too"
        ),
        columns=("domain", "requests_with_differences"),
    )
    counts = ctx.crowd.variation_counts()
    ranked = counts.most_common()
    for domain, count in ranked:
        result.add_row(domain, count)

    top = [domain for domain, _ in ranked[:8]]
    result.check(
        "amazon/hotels/steam occupy the head",
        all(domain in top for domain in PAPER_TOP_DOMAINS[:3]),
    )
    result.check(
        "counts span an order of magnitude",
        bool(ranked) and ranked[0][1] >= 5 * max(1, ranked[-1][1]),
    )
    named = set(PAPER_TOP_DOMAINS)
    result.check(
        "long-tail shops rarely flagged",
        sum(count for domain, count in ranked if domain not in named
            and "www." + domain.split(".", 1)[-1] != domain) <= len(ctx.crowd),
    )
    honest = [d for d in ctx.world.long_tail if counts.get(d, 0) > 0]
    result.check("no uniform-priced long-tail shop is flagged", not honest)
    result.notes.append(
        f"{len(ranked)} domains flagged out of {ctx.crowd.n_domains} checked"
    )
    return result
